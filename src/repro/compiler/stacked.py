"""Stacked (multi-layer) LSTM lowering.

Production speech/text models stack several recurrent layers; within a
timestep, layer *l* consumes layer *l-1*'s fresh hidden state. The
lowering emits each layer's chains in order per timestep, with layer 0
fed from the network queue and the final layer's output multicast to its
own state slot and the network.

Stacks whose weights exceed one accelerator are the motivating case for
the multi-FPGA partitioner (:mod:`repro.compiler.partition`); this
module handles the single-accelerator case.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..isa.memspace import MemId
from ..isa.program import ProgramBuilder
from ..models.lstm import LstmReference
from .allocator import RegisterAllocator
from .lowering import CompiledModel, _DimTracker, _padded, _vector_count


def compile_stacked_lstm(models: Sequence[LstmReference],
                         config: NpuConfig,
                         name: str = "stacked_lstm") -> CompiledModel:
    """Lower a stack of LSTM layers onto one NPU.

    Layer ``l``'s input dimension must equal layer ``l-1``'s hidden
    dimension; layer 0's input arrives from the network.
    """
    if not models:
        raise CompileError("at least one layer required")
    for lower, upper in zip(models, models[1:]):
        if upper.input_dim != lower.hidden_dim:
            raise CompileError(
                f"layer input dim {upper.input_dim} != previous hidden "
                f"dim {lower.hidden_dim}")

    n = config.native_dim
    alloc = RegisterAllocator(config)
    layers = []
    for l, model in enumerate(models):
        h, x_dim = model.hidden_dim, model.input_dim
        rows = _vector_count(h, n)
        cols = _vector_count(h, n)
        cols_x = _vector_count(x_dim, n)
        entry = {
            "model": model, "rows": rows, "cols": cols,
            "cols_x": cols_x,
            "W": {g: alloc.alloc_matrix(h, x_dim, f"L{l}.W_{g}")
                  for g in ("f", "i", "o", "c")},
            "U": {g: alloc.alloc_matrix(h, h, f"L{l}.U_{g}")
                  for g in ("f", "i", "o", "c")},
            "xt": (alloc.alloc(MemId.InitialVrf, cols_x, f"L{l}.xt")
                   if l == 0 else None),
            "h_prev": alloc.alloc(MemId.InitialVrf, cols, f"L{l}.h_prev"),
            "ct": alloc.alloc(MemId.InitialVrf, rows, f"L{l}.ct"),
            "bias": {g: alloc.alloc(MemId.AddSubVrf, rows, f"L{l}.b_{g}")
                     for g in ("f", "i", "o", "c")},
            "xw": {g: alloc.alloc(MemId.AddSubVrf, rows, f"L{l}.xW_{g}")
                   for g in ("f", "i", "o", "c")},
            "ft_mod": alloc.alloc(MemId.AddSubVrf, rows, f"L{l}.ft_mod"),
            "c_prev": alloc.alloc(MemId.MultiplyVrf, rows,
                                  f"L{l}.c_prev"),
            "it": alloc.alloc(MemId.MultiplyVrf, rows, f"L{l}.it"),
            "ot": alloc.alloc(MemId.MultiplyVrf, rows, f"L{l}.ot"),
        }
        layers.append(entry)

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    last = len(layers) - 1
    with b.loop("steps"):
        for l, layer in enumerate(layers):
            rows, cols = layer["rows"], layer["cols"]
            cols_x = layer["cols_x"]
            if l == 0:
                dims.set(rows=cols_x)
                b.v_rd(MemId.NetQ)
                b.v_wr(MemId.InitialVrf, layer["xt"].base)
                x_base = layer["xt"].base
            else:
                # Input is the fresh hidden state of the layer below.
                x_base = layers[l - 1]["h_prev"].base
            dims.set(rows=rows, cols=cols_x)
            for gate in ("f", "i", "o", "c"):
                b.v_rd(MemId.InitialVrf, x_base)
                b.mv_mul(layer["W"][gate].base)
                b.vv_add(layer["bias"][gate].base)
                b.v_wr(MemId.AddSubVrf, layer["xw"][gate].base)
            dims.set(rows=rows, cols=cols)
            b.v_rd(MemId.InitialVrf, layer["h_prev"].base)
            b.mv_mul(layer["U"]["f"].base)
            b.vv_add(layer["xw"]["f"].base)
            b.v_sigm()
            b.vv_mul(layer["c_prev"].base)
            b.v_wr(MemId.AddSubVrf, layer["ft_mod"].base)
            b.v_rd(MemId.InitialVrf, layer["h_prev"].base)
            b.mv_mul(layer["U"]["i"].base)
            b.vv_add(layer["xw"]["i"].base)
            b.v_sigm()
            b.v_wr(MemId.MultiplyVrf, layer["it"].base)
            b.v_rd(MemId.InitialVrf, layer["h_prev"].base)
            b.mv_mul(layer["U"]["o"].base)
            b.vv_add(layer["xw"]["o"].base)
            b.v_sigm()
            b.v_wr(MemId.MultiplyVrf, layer["ot"].base)
            b.v_rd(MemId.InitialVrf, layer["h_prev"].base)
            b.mv_mul(layer["U"]["c"].base)
            b.vv_add(layer["xw"]["c"].base)
            b.v_tanh()
            b.vv_mul(layer["it"].base)
            b.vv_add(layer["ft_mod"].base)
            b.v_wr(MemId.MultiplyVrf, layer["c_prev"].base)
            b.v_wr(MemId.InitialVrf, layer["ct"].base)
            dims.set(rows=rows)
            b.v_rd(MemId.InitialVrf, layer["ct"].base)
            b.v_tanh()
            b.vv_mul(layer["ot"].base)
            b.v_wr(MemId.InitialVrf, layer["h_prev"].base)
            if l == last:
                b.v_wr(MemId.NetQ)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        for layer in layers:
            model = layer["model"]
            if not hasattr(model, "W"):
                raise CompileError(
                    f"{name} was compiled from shapes only (timing use)")
            for gate in ("f", "i", "o", "c"):
                sim.load_matrix(layer["W"][gate].base, model.W[gate])
                sim.load_matrix(layer["U"][gate].base, model.U[gate])
                sim.vrfs[MemId.AddSubVrf].write(
                    layer["bias"][gate].base,
                    _padded(model.b[gate], layer["rows"], n))

    return CompiledModel(
        name=name, kind="lstm", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=models[0].input_dim,
        output_length=models[-1].hidden_dim,
        input_vectors_per_step=layers[0]["cols_x"],
        output_vectors_per_step=layers[-1]["rows"],
        ops_per_step=sum(m.shape(1).ops_per_step for m in models),
    )


def reference_stacked_run(models: Sequence[LstmReference],
                          xs: List[np.ndarray]) -> List[np.ndarray]:
    """Numpy reference for a stacked LSTM (per-step outputs of the top
    layer)."""
    states = [(np.zeros(m.hidden_dim, dtype=np.float32),
               np.zeros(m.hidden_dim, dtype=np.float32)) for m in models]
    outputs = []
    for x in xs:
        value = np.asarray(x, dtype=np.float32)
        for i, model in enumerate(models):
            h, c = states[i]
            h, c = model.step(value, h, c)
            states[i] = (h, c)
            value = h
        outputs.append(value)
    return outputs
