"""Batch-interleaved RNN lowering (paper Section VII-B3, future work).

"There is additional firmware optimizations to be made for batch size
>= 2 by interleaving the computation for each RNN timestep among all
input batches to further space out dependencies. This would be
particularly effective at increasing utilization for small LSTM/GRU
layers, which are not always able to fill the deep BW pipeline."

This module implements that optimization: :func:`compile_lstm_interleaved`
lowers an LSTM so each timestep's chains are emitted for every batch
element back-to-back. Chains of different batch elements are independent,
so the serial h->gates->c->h dependency of one element hides behind the
work of the others. The weights are shared; only the state slots
(``xt``, ``h_prev``, ``c_prev``, gate temporaries) replicate per element.

Realizing the utilization gain also requires the configuration-caching
scheduler (``TimingSimulator(replay_loops=True)``): with full per-chain
setup the top-level scheduler itself becomes the bottleneck and
interleaving cannot help — which is precisely why the paper calls this a
*firmware* optimization. The ablation benchmark quantifies both halves.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..isa.memspace import MemId
from ..isa.program import ProgramBuilder
from ..models.lstm import LstmReference
from .allocator import RegisterAllocator
from .lowering import CompiledModel, _DimTracker, _padded, _vector_count


@dataclasses.dataclass
class CompiledInterleaved(CompiledModel):
    """A batch-interleaved recurrent model."""

    batch: int = 1

    def run_batch(self, sequences: List[List[np.ndarray]],
                  exact: bool = False,
                  sim: Optional[FunctionalSimulator] = None
                  ) -> List[List[np.ndarray]]:
        """Run ``batch`` independent sequences of equal length.

        Returns per-sequence output lists, matching what ``batch``
        separate :meth:`run_sequence` calls would produce.
        """
        if len(sequences) != self.batch:
            raise CompileError(
                f"{self.name}: expected {self.batch} sequences, got "
                f"{len(sequences)}")
        steps = len(sequences[0])
        if any(len(s) != steps for s in sequences):
            raise CompileError(
                f"{self.name}: all sequences must share one length")
        if sim is None:
            sim = self.new_simulator(exact=exact)
        # Inputs interleave batch-major within each timestep.
        for t in range(steps):
            for b in range(self.batch):
                self._push_padded(sim, sequences[b][t])
        sim.run(self.program, bindings={self.steps_binding: steps})
        vectors = sim.netq.pop_outputs()
        per = self.output_vectors_per_step
        expected = steps * self.batch * per
        if len(vectors) != expected:
            raise CompileError(
                f"{self.name}: expected {expected} output vectors, got "
                f"{len(vectors)}")
        outputs: List[List[np.ndarray]] = [[] for _ in range(self.batch)]
        i = 0
        for _ in range(steps):
            for b in range(self.batch):
                flat = np.concatenate(vectors[i:i + per])
                outputs[b].append(flat[:self.output_length])
                i += per
        return outputs


def compile_lstm_interleaved(model: LstmReference, config: NpuConfig,
                             batch: int,
                             name: str = "lstm_interleaved"
                             ) -> CompiledInterleaved:
    """Lower an LSTM with ``batch`` interleaved input streams.

    Identical arithmetic to :func:`repro.compiler.lowering.compile_lstm`
    per element; per timestep the chain schedule runs each phase across
    all elements before moving on, so no two dependent chains are
    adjacent for batch >= 2.
    """
    if batch < 1:
        raise CompileError("batch must be >= 1")
    n = config.native_dim
    h, x_dim = model.hidden_dim, model.input_dim
    rows = _vector_count(h, n)
    cols = _vector_count(h, n)
    cols_x = _vector_count(x_dim, n)

    alloc = RegisterAllocator(config)
    for gate in ("f", "i", "o", "c"):
        alloc.alloc_matrix(h, x_dim, f"W_{gate}")
        alloc.alloc_matrix(h, h, f"U_{gate}")
    bias = {g: alloc.alloc(MemId.AddSubVrf, rows, f"b_{g}")
            for g in ("f", "i", "o", "c")}
    xt = [alloc.alloc(MemId.InitialVrf, cols_x, f"xt{b}")
          for b in range(batch)]
    h_prev = [alloc.alloc(MemId.InitialVrf, cols, f"h_prev{b}")
              for b in range(batch)]
    ct = [alloc.alloc(MemId.InitialVrf, rows, f"ct{b}")
          for b in range(batch)]
    xw = {(g, b): alloc.alloc(MemId.AddSubVrf, rows, f"xW_{g}{b}")
          for g in ("f", "i", "o", "c") for b in range(batch)}
    ft_mod = [alloc.alloc(MemId.AddSubVrf, rows, f"ft_mod{b}")
              for b in range(batch)]
    c_prev = [alloc.alloc(MemId.MultiplyVrf, rows, f"c_prev{b}")
              for b in range(batch)]
    it = [alloc.alloc(MemId.MultiplyVrf, rows, f"it{b}")
          for b in range(batch)]
    ot = [alloc.alloc(MemId.MultiplyVrf, rows, f"ot{b}")
          for b in range(batch)]

    b_ = ProgramBuilder(name)
    dims = _DimTracker(b_)
    with b_.loop("steps"):
        dims.set(rows=cols_x)
        for b in range(batch):
            b_.v_rd(MemId.NetQ)
            b_.v_wr(MemId.InitialVrf, xt[b].base)
        dims.set(rows=rows, cols=cols_x)
        for gate in ("f", "i", "o", "c"):
            for b in range(batch):
                b_.v_rd(MemId.InitialVrf, xt[b].base)
                b_.mv_mul(alloc.slot(f"W_{gate}").base)
                b_.vv_add(bias[gate].base)
                b_.v_wr(MemId.AddSubVrf, xw[(gate, b)].base)
        dims.set(rows=rows, cols=cols)
        for b in range(batch):
            b_.v_rd(MemId.InitialVrf, h_prev[b].base)
            b_.mv_mul(alloc.slot("U_f").base)
            b_.vv_add(xw[("f", b)].base)
            b_.v_sigm()
            b_.vv_mul(c_prev[b].base)
            b_.v_wr(MemId.AddSubVrf, ft_mod[b].base)
        for b in range(batch):
            b_.v_rd(MemId.InitialVrf, h_prev[b].base)
            b_.mv_mul(alloc.slot("U_i").base)
            b_.vv_add(xw[("i", b)].base)
            b_.v_sigm()
            b_.v_wr(MemId.MultiplyVrf, it[b].base)
        for b in range(batch):
            b_.v_rd(MemId.InitialVrf, h_prev[b].base)
            b_.mv_mul(alloc.slot("U_o").base)
            b_.vv_add(xw[("o", b)].base)
            b_.v_sigm()
            b_.v_wr(MemId.MultiplyVrf, ot[b].base)
        for b in range(batch):
            b_.v_rd(MemId.InitialVrf, h_prev[b].base)
            b_.mv_mul(alloc.slot("U_c").base)
            b_.vv_add(xw[("c", b)].base)
            b_.v_tanh()
            b_.vv_mul(it[b].base)
            b_.vv_add(ft_mod[b].base)
            b_.v_wr(MemId.MultiplyVrf, c_prev[b].base)
            b_.v_wr(MemId.InitialVrf, ct[b].base)
        dims.set(rows=rows)
        for b in range(batch):
            b_.v_rd(MemId.InitialVrf, ct[b].base)
            b_.v_tanh()
            b_.vv_mul(ot[b].base)
            b_.v_wr(MemId.InitialVrf, h_prev[b].base)
            b_.v_wr(MemId.NetQ)
    program = b_.build()

    def loader(sim: FunctionalSimulator) -> None:
        if not hasattr(model, "W"):
            raise CompileError(
                f"{name} was compiled from shapes only (timing use)")
        for gate in ("f", "i", "o", "c"):
            sim.load_matrix(alloc.slot(f"W_{gate}").base, model.W[gate])
            sim.load_matrix(alloc.slot(f"U_{gate}").base, model.U[gate])
            sim.vrfs[MemId.AddSubVrf].write(
                bias[gate].base, _padded(model.b[gate], rows, n))

    return CompiledInterleaved(
        name=name, kind="lstm", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=x_dim, output_length=h,
        input_vectors_per_step=cols_x, output_vectors_per_step=rows,
        ops_per_step=batch * model.shape(1).ops_per_step,
        batch=batch,
    )
