"""Weight-streaming RNN lowering: what happens *without* model pinning.

The BW NPU's defining choice is pinning model weights in on-chip SRAM
(Section I: "terabytes per second of bandwidth at low power"). This
module lowers an LSTM the other way — weights resident in DRAM, each
gate's tiles streamed into a staging MRF region every timestep via
``m_rd``/``m_wr`` chains — so the pinning decision can be ablated
quantitatively. Transfers overlap compute at gate granularity (the
transfer of gate *g+1* runs while gate *g* computes), which is exactly
the CNN regime of Section V-A; for memory-intensive RNNs the DRAM port
becomes the bottleneck and per-step latency collapses to
``weight_bytes / DRAM bandwidth``.

The generated program is fully functional: the loader places quantized
weight tiles in simulated DRAM and the program's matrix chains move them
on chip before each use.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..isa.memspace import MemId
from ..isa.program import ProgramBuilder
from .allocator import RegisterAllocator
from .lowering import (
    CompiledModel,
    LstmShapeOnly,
    _DimTracker,
    _padded,
    _vector_count,
)


def compile_lstm_streamed(model, config: NpuConfig,
                          name: str = "lstm_streamed") -> CompiledModel:
    """Lower an LSTM with DRAM-resident weights (no pinning).

    Accepts an :class:`~repro.models.lstm.LstmReference` (functional) or
    :class:`~repro.compiler.lowering.LstmShapeOnly` (timing only). Each
    timestep reloads all eight weight matrices through the DRAM port
    before their ``mv_mul`` chains execute.
    """
    n = config.native_dim
    h, x_dim = model.hidden_dim, model.input_dim
    rows = _vector_count(h, n)
    cols = _vector_count(h, n)
    cols_x = _vector_count(x_dim, n)

    alloc = RegisterAllocator(config)
    # Staging slots on chip; the DRAM address space mirrors them.
    mrf_slot: Dict[str, object] = {}
    dram_base: Dict[str, int] = {}
    next_dram = 0
    matrices: Dict[str, Tuple[int, int]] = {}
    for gate in ("f", "i", "o", "c"):
        matrices[f"W_{gate}"] = (rows, cols_x)
        matrices[f"U_{gate}"] = (rows, cols)
    for mat, (r, c) in matrices.items():
        mrf_slot[mat] = alloc.alloc(MemId.MatrixRf, r * c, f"stage_{mat}")
        dram_base[mat] = next_dram
        next_dram += r * c

    ivrf_xt = alloc.alloc(MemId.InitialVrf, cols_x, "xt")
    ivrf_h_prev = alloc.alloc(MemId.InitialVrf, cols, "h_prev")
    ivrf_ct = alloc.alloc(MemId.InitialVrf, rows, "ct")
    bias = {g: alloc.alloc(MemId.AddSubVrf, rows, f"b_{g}")
            for g in ("f", "i", "o", "c")}
    xw = {g: alloc.alloc(MemId.AddSubVrf, rows, f"xW_{g}")
          for g in ("f", "i", "o", "c")}
    ft_mod = alloc.alloc(MemId.AddSubVrf, rows, "ft_mod")
    c_prev = alloc.alloc(MemId.MultiplyVrf, rows, "c_prev")
    it = alloc.alloc(MemId.MultiplyVrf, rows, "it")
    ot = alloc.alloc(MemId.MultiplyVrf, rows, "ot")

    b = ProgramBuilder(name)
    dims = _DimTracker(b)

    def fetch(mat: str) -> None:
        r, c = matrices[mat]
        dims.set(rows=r, cols=c)
        b.m_rd(MemId.Dram, dram_base[mat])
        b.m_wr(MemId.MatrixRf, mrf_slot[mat].base)

    with b.loop("steps"):
        dims.set(rows=cols_x)
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.InitialVrf, ivrf_xt.base)
        for gate in ("f", "i", "o", "c"):
            fetch(f"W_{gate}")
            dims.set(rows=rows, cols=cols_x)
            b.v_rd(MemId.InitialVrf, ivrf_xt.base)
            b.mv_mul(mrf_slot[f"W_{gate}"].base)
            b.vv_add(bias[gate].base)
            b.v_wr(MemId.AddSubVrf, xw[gate].base)
        # f gate.
        fetch("U_f")
        dims.set(rows=rows, cols=cols)
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(mrf_slot["U_f"].base)
        b.vv_add(xw["f"].base)
        b.v_sigm()
        b.vv_mul(c_prev.base)
        b.v_wr(MemId.AddSubVrf, ft_mod.base)
        # i gate.
        fetch("U_i")
        dims.set(rows=rows, cols=cols)
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(mrf_slot["U_i"].base)
        b.vv_add(xw["i"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, it.base)
        # o gate.
        fetch("U_o")
        dims.set(rows=rows, cols=cols)
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(mrf_slot["U_o"].base)
        b.vv_add(xw["o"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, ot.base)
        # c gate.
        fetch("U_c")
        dims.set(rows=rows, cols=cols)
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(mrf_slot["U_c"].base)
        b.vv_add(xw["c"].base)
        b.v_tanh()
        b.vv_mul(it.base)
        b.vv_add(ft_mod.base)
        b.v_wr(MemId.MultiplyVrf, c_prev.base)
        b.v_wr(MemId.InitialVrf, ivrf_ct.base)
        # output.
        dims.set(rows=rows)
        b.v_rd(MemId.InitialVrf, ivrf_ct.base)
        b.v_tanh()
        b.vv_mul(ot.base)
        b.v_wr(MemId.InitialVrf, ivrf_h_prev.base)
        b.v_wr(MemId.NetQ)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        if not hasattr(model, "W"):
            raise CompileError(
                f"{name} was compiled from shapes only (timing use)")
        helper = FunctionalSimulator(config)
        for gate in ("f", "i", "o", "c"):
            for prefix, weights in (("W", model.W), ("U", model.U)):
                tiles = helper._tiles_of(weights[gate])
                sim.dram.write_tiles(dram_base[f"{prefix}_{gate}"],
                                     tiles)
            sim.vrfs[MemId.AddSubVrf].write(
                bias[gate].base, _padded(model.b[gate], rows, n))

    return CompiledModel(
        name=name, kind="lstm", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=x_dim, output_length=h,
        input_vectors_per_step=cols_x, output_vectors_per_step=rows,
        ops_per_step=model.shape(1).ops_per_step,
    )


def compile_lstm_streamed_shape(hidden_dim: int, config: NpuConfig,
                                input_dim: Optional[int] = None
                                ) -> CompiledModel:
    """Timing-only streamed LSTM (no weights materialized)."""
    x = input_dim if input_dim is not None else hidden_dim
    return compile_lstm_streamed(LstmShapeOnly(hidden_dim, x), config,
                                 name=f"lstm{hidden_dim}_streamed")
