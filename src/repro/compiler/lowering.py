"""Lowering DNN models onto the BW NPU ISA.

Produces :class:`CompiledModel` objects that bundle an
:class:`~repro.isa.program.NpuProgram` with its memory layout and a weight
loader. The recurrent lowerings mirror the hand-tuned, parameterized
programs of the paper (the ~100-line LSTM of Section IV-C): one chain per
gate matmul with the point-wise tail fused into the same chain, scalar
``rows``/``columns`` registers configuring mega-SIMD tiling, and
``h_prev``/``c_prev`` state pinned in the VRFs between timesteps.

Convolutions are linearized onto matrix-vector multiplication via im2col
(Section IV-B); the im2col unfold itself runs on the host, standing in
for the CPU sub-graphs of the federated runtime.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Optional

import numpy as np

from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..functional.replay import BatchedReplay
from ..isa.memspace import MemId
from ..isa.program import NpuProgram, ProgramBuilder
from ..models.cnn import ConvSpec, im2col
from ..models.gru import GruReference
from ..models.lstm import LstmReference
from ..models.mlp import MlpReference
from .allocator import RegisterAllocator, Slot


@dataclasses.dataclass
class CompiledModel:
    """A model lowered onto a specific NPU configuration.

    Attributes:
        name: Model name.
        kind: One of ``"lstm"``, ``"gru"``, ``"mlp"``, ``"conv"``.
        config: Target NPU configuration.
        program: The lowered NPU program.
        allocator: Memory layout (named slots in MRF and VRFs).
        loader: Callable that loads weights/constants into a simulator.
        input_length: Logical input elements consumed per step/invocation.
        output_length: Logical output elements produced per step/invocation.
        input_vectors_per_step: Native vectors read from NetQ per step.
        output_vectors_per_step: Native vectors written to NetQ per step.
        steps_binding: Name of the run-time loop-count binding.
        is_recurrent: Whether the program loops over timesteps with state.
        ops_per_step: Nominal (unpadded) operations per step/invocation.
    """

    name: str
    kind: str
    config: NpuConfig
    program: NpuProgram
    allocator: RegisterAllocator
    loader: Callable[[FunctionalSimulator], None]
    input_length: int
    output_length: int
    input_vectors_per_step: int
    output_vectors_per_step: int
    steps_binding: str = "steps"
    is_recurrent: bool = True
    ops_per_step: int = 0

    def new_simulator(self, exact: bool = False, tracer=None,
                      metrics=None, naive: bool = False) -> FunctionalSimulator:
        """Create a simulator with this model's weights pinned on chip.

        ``tracer``/``metrics`` are optional :mod:`repro.obs` hooks
        passed through to the :class:`FunctionalSimulator`; ``naive``
        selects the reference per-tile ``mv_mul`` path (bit-identical,
        used by the perf benchmark and equivalence tests).
        """
        sim = FunctionalSimulator(self.config, exact=exact,
                                  tracer=tracer, metrics=metrics,
                                  naive=naive)
        self.loader(sim)
        return sim

    @property
    def mrf_tiles_used(self) -> int:
        return self.allocator.used(MemId.MatrixRf)

    def run_sequence(self, xs: List[np.ndarray], exact: bool = False,
                     sim: Optional[FunctionalSimulator] = None,
                     compiled: bool = False) -> List[np.ndarray]:
        """Run a recurrent model over a sequence of input vectors.

        ``compiled=True`` executes through the simulator's compiled
        replay plan (bit-identical; see
        :mod:`repro.functional.replay`).
        """
        if not self.is_recurrent:
            raise CompileError(f"{self.name} is not a recurrent model")
        if sim is None:
            sim = self.new_simulator(exact=exact)
        for x in xs:
            self._push_padded(sim, x)
        sim.run(self.program, bindings={self.steps_binding: len(xs)},
                compiled=compiled)
        return self._collect_outputs(sim, len(xs))

    def run_single(self, x: np.ndarray, exact: bool = False,
                   sim: Optional[FunctionalSimulator] = None,
                   compiled: bool = False) -> np.ndarray:
        """Run a feed-forward (non-recurrent) model on one input."""
        if self.is_recurrent:
            raise CompileError(f"{self.name} is recurrent; use run_sequence")
        if sim is None:
            sim = self.new_simulator(exact=exact)
        self._push_padded(sim, x)
        sim.run(self.program, bindings={self.steps_binding: 1},
                compiled=compiled)
        return self._collect_outputs(sim, 1)[0]

    def run_sequence_batched(self, xs_batch: List[List[np.ndarray]],
                             sim: Optional[FunctionalSimulator] = None,
                             exact: bool = False
                             ) -> List[List[np.ndarray]]:
        """Run B independent input sequences through one batched replay.

        All sequences must have the same length (they step in lockstep
        through one compiled plan). Returns one output list per request,
        each bit-identical to a sequential
        ``run_sequence(xs_batch[b], compiled=True)`` on a fresh
        simulator — the batched-execution contract asserted by the
        four-way differential fuzzer and the perf benchmarks. ``exact``
        selects the wide-mantissa simulator when ``sim`` is omitted
        (mirrors :meth:`run_sequence`).
        """
        if not self.is_recurrent:
            raise CompileError(f"{self.name} is not a recurrent model")
        batch = len(xs_batch)
        if batch == 0:
            return []
        steps = len(xs_batch[0])
        if any(len(xs) != steps for xs in xs_batch):
            raise CompileError(
                f"{self.name}: batched sequences must share one length")
        if sim is None:
            sim = self.new_simulator(exact=exact)
        replay = BatchedReplay(sim, self.program, batch,
                               bindings={self.steps_binding: steps})
        n = self.config.native_dim
        entries = self.input_vectors_per_step
        for t in range(steps):
            padded = np.zeros((batch, entries * n), dtype=np.float32)
            for r, xs in enumerate(xs_batch):
                x = np.asarray(xs[t], dtype=np.float32).reshape(-1)
                if x.shape[0] != self.input_length:
                    raise CompileError(
                        f"{self.name}: input length {x.shape[0]} != "
                        f"expected {self.input_length}")
                padded[r, :x.shape[0]] = x
            for i in range(entries):
                replay.push_input(padded[:, i * n:(i + 1) * n])
        replay.run()
        per_step = self.output_vectors_per_step
        results = []
        for vectors in replay.pop_outputs():
            if len(vectors) != steps * per_step:
                raise CompileError(
                    f"{self.name}: expected {steps * per_step} output "
                    f"vector(s), got {len(vectors)}")
            results.append([
                np.concatenate(vectors[t * per_step:(t + 1) * per_step]
                               )[:self.output_length]
                for t in range(steps)])
        return results

    def _push_padded(self, sim: FunctionalSimulator, x: np.ndarray) -> None:
        n = self.config.native_dim
        x = np.asarray(x, dtype=np.float32).reshape(-1)
        if x.shape[0] != self.input_length:
            raise CompileError(
                f"{self.name}: input length {x.shape[0]} != expected "
                f"{self.input_length}")
        padded = np.zeros(self.input_vectors_per_step * n, dtype=np.float32)
        padded[:x.shape[0]] = x
        for i in range(self.input_vectors_per_step):
            sim.netq.push_input(padded[i * n:(i + 1) * n])

    def _collect_outputs(self, sim: FunctionalSimulator,
                         steps: int) -> List[np.ndarray]:
        vectors = sim.netq.pop_outputs()
        per_step = self.output_vectors_per_step
        if len(vectors) != steps * per_step:
            raise CompileError(
                f"{self.name}: expected {steps * per_step} output "
                f"vector(s), got {len(vectors)}")
        outputs = []
        for t in range(steps):
            flat = np.concatenate(vectors[t * per_step:(t + 1) * per_step])
            outputs.append(flat[:self.output_length])
        return outputs


class _DimTracker:
    """Emits ``s_wr`` only when rows/columns actually change."""

    def __init__(self, builder: ProgramBuilder):
        self._builder = builder
        self._rows: Optional[int] = None
        self._cols: Optional[int] = None

    def set(self, rows: int, cols: Optional[int] = None) -> None:
        if rows != self._rows:
            self._builder.set_rows(rows)
            self._rows = rows
        if cols is not None and cols != self._cols:
            self._builder.set_columns(cols)
            self._cols = cols


def _vector_count(length: int, native_dim: int) -> int:
    return max(1, math.ceil(length / native_dim))


def _padded(vector: np.ndarray, entries: int, native_dim: int) -> np.ndarray:
    out = np.zeros(entries * native_dim, dtype=np.float32)
    flat = np.asarray(vector, dtype=np.float32).reshape(-1)
    out[:flat.shape[0]] = flat
    return out.reshape(entries, native_dim)


@dataclasses.dataclass(frozen=True)
class LstmShapeOnly:
    """Shape stand-in accepted by :func:`compile_lstm` for timing-only
    compilation (no weights materialized; the loader raises)."""

    hidden_dim: int
    input_dim: int

    def shape(self, time_steps: int = 1):
        from ..models.lstm import LstmShape
        return LstmShape(self.hidden_dim, self.input_dim, time_steps)


@dataclasses.dataclass(frozen=True)
class GruShapeOnly:
    """Shape stand-in accepted by :func:`compile_gru` (timing-only)."""

    hidden_dim: int
    input_dim: int

    def shape(self, time_steps: int = 1):
        from ..models.gru import GruShape
        return GruShape(self.hidden_dim, self.input_dim, time_steps)


def compile_rnn_shape(kind: str, hidden_dim: int, config: NpuConfig,
                      input_dim: Optional[int] = None) -> CompiledModel:
    """Compile an LSTM/GRU program from shapes alone.

    The returned model supports timing simulation and program inspection;
    creating a functional simulator raises :class:`CompileError` because
    no weights exist. Avoids materializing hundreds of megabytes of
    random weights when only performance is being measured.
    """
    x = input_dim if input_dim is not None else hidden_dim
    if kind == "lstm":
        return compile_lstm(LstmShapeOnly(hidden_dim, x), config,
                            name=f"lstm{hidden_dim}")
    if kind == "gru":
        return compile_gru(GruShapeOnly(hidden_dim, x), config,
                           name=f"gru{hidden_dim}")
    raise CompileError(f"unknown RNN kind {kind!r}")


# ---------------------------------------------------------------------------
# LSTM
# ---------------------------------------------------------------------------

def compile_lstm(model: LstmReference, config: NpuConfig,
                 name: str = "lstm") -> CompiledModel:
    """Lower an LSTM onto the NPU (the Section IV-C program)."""
    n = config.native_dim
    h, x_dim = model.hidden_dim, model.input_dim
    rows = _vector_count(h, n)
    cols = _vector_count(h, n)
    cols_x = _vector_count(x_dim, n)

    alloc = RegisterAllocator(config)
    for gate in ("f", "i", "o", "c"):
        alloc.alloc_matrix(h, x_dim, f"W_{gate}")
        alloc.alloc_matrix(h, h, f"U_{gate}")
    ivrf_xt = alloc.alloc(MemId.InitialVrf, cols_x, "xt")
    ivrf_h_prev = alloc.alloc(MemId.InitialVrf, cols, "h_prev")
    ivrf_ct = alloc.alloc(MemId.InitialVrf, rows, "ct")
    bias = {g: alloc.alloc(MemId.AddSubVrf, rows, f"b_{g}")
            for g in ("f", "i", "o", "c")}
    xw = {g: alloc.alloc(MemId.AddSubVrf, rows, f"xW_{g}")
          for g in ("f", "i", "o", "c")}
    asvrf_ft_mod = alloc.alloc(MemId.AddSubVrf, rows, "ft_mod")
    mul_c_prev = alloc.alloc(MemId.MultiplyVrf, rows, "c_prev")
    mul_it = alloc.alloc(MemId.MultiplyVrf, rows, "it")
    mul_ot = alloc.alloc(MemId.MultiplyVrf, rows, "ot")

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    with b.loop("steps"):
        # xt = next network input.
        dims.set(rows=cols_x)
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.InitialVrf, ivrf_xt.base)
        # xW_g = xt * W_g + b_g for each gate.
        dims.set(rows=rows, cols=cols_x)
        for gate in ("f", "i", "o", "c"):
            b.v_rd(MemId.InitialVrf, ivrf_xt.base)
            b.mv_mul(alloc.slot(f"W_{gate}").base)
            b.vv_add(bias[gate].base)
            b.v_wr(MemId.AddSubVrf, xw[gate].base)
        dims.set(rows=rows, cols=cols)
        # f gate -> multiply by c_prev.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_f").base)
        b.vv_add(xw["f"].base)
        b.v_sigm()
        b.vv_mul(mul_c_prev.base)
        b.v_wr(MemId.AddSubVrf, asvrf_ft_mod.base)
        # i gate.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_i").base)
        b.vv_add(xw["i"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, mul_it.base)
        # o gate.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_o").base)
        b.vv_add(xw["o"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, mul_ot.base)
        # c gate -> store ct and c_prev.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_c").base)
        b.vv_add(xw["c"].base)
        b.v_tanh()
        b.vv_mul(mul_it.base)
        b.vv_add(asvrf_ft_mod.base)
        b.v_wr(MemId.MultiplyVrf, mul_c_prev.base)
        b.v_wr(MemId.InitialVrf, ivrf_ct.base)
        # produce ht, store and send to network.
        dims.set(rows=rows)
        b.v_rd(MemId.InitialVrf, ivrf_ct.base)
        b.v_tanh()
        b.vv_mul(mul_ot.base)
        b.v_wr(MemId.InitialVrf, ivrf_h_prev.base)
        b.v_wr(MemId.NetQ)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        if not hasattr(model, "W"):
            raise CompileError(
                f"{name} was compiled from shapes only (timing use); "
                "compile from a reference model to execute functionally")
        for gate in ("f", "i", "o", "c"):
            sim.load_matrix(alloc.slot(f"W_{gate}").base, model.W[gate])
            sim.load_matrix(alloc.slot(f"U_{gate}").base, model.U[gate])
            sim.vrfs[MemId.AddSubVrf].write(
                bias[gate].base, _padded(model.b[gate], rows, n))

    return CompiledModel(
        name=name, kind="lstm", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=x_dim, output_length=h,
        input_vectors_per_step=cols_x, output_vectors_per_step=rows,
        ops_per_step=model.shape(1).ops_per_step,
    )


# ---------------------------------------------------------------------------
# GRU (DeepBench / cuDNN variant)
# ---------------------------------------------------------------------------

def compile_gru(model: GruReference, config: NpuConfig,
                name: str = "gru") -> CompiledModel:
    """Lower a GRU onto the NPU.

    Per step: three ``xW`` chains, the r and z gate chains, a ``1 - z``
    chain, a ``z * h_prev`` chain, and a fused candidate/output chain
    computing ``h' = (1-z) * tanh(xW_h + r*(U_h h)) + z * h``.
    """
    n = config.native_dim
    h, x_dim = model.hidden_dim, model.input_dim
    rows = _vector_count(h, n)
    cols = _vector_count(h, n)
    cols_x = _vector_count(x_dim, n)

    alloc = RegisterAllocator(config)
    for gate in ("r", "z", "h"):
        alloc.alloc_matrix(h, x_dim, f"W_{gate}")
        alloc.alloc_matrix(h, h, f"U_{gate}")
    ivrf_xt = alloc.alloc(MemId.InitialVrf, cols_x, "xt")
    ivrf_h_prev = alloc.alloc(MemId.InitialVrf, cols, "h_prev")
    bias = {g: alloc.alloc(MemId.AddSubVrf, rows, f"b_{g}")
            for g in ("r", "z", "h")}
    xw = {g: alloc.alloc(MemId.AddSubVrf, rows, f"xW_{g}")
          for g in ("r", "z", "h")}
    asvrf_ones = alloc.alloc(MemId.AddSubVrf, rows, "ones")
    asvrf_zh = alloc.alloc(MemId.AddSubVrf, rows, "zh")
    mul_r = alloc.alloc(MemId.MultiplyVrf, rows, "rt")
    mul_z = alloc.alloc(MemId.MultiplyVrf, rows, "zt")
    mul_zbar = alloc.alloc(MemId.MultiplyVrf, rows, "zbar")

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    with b.loop("steps"):
        dims.set(rows=cols_x)
        b.v_rd(MemId.NetQ)
        b.v_wr(MemId.InitialVrf, ivrf_xt.base)
        dims.set(rows=rows, cols=cols_x)
        for gate in ("r", "z", "h"):
            b.v_rd(MemId.InitialVrf, ivrf_xt.base)
            b.mv_mul(alloc.slot(f"W_{gate}").base)
            b.vv_add(bias[gate].base)
            b.v_wr(MemId.AddSubVrf, xw[gate].base)
        dims.set(rows=rows, cols=cols)
        # r gate.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_r").base)
        b.vv_add(xw["r"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, mul_r.base)
        # z gate.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_z").base)
        b.vv_add(xw["z"].base)
        b.v_sigm()
        b.v_wr(MemId.MultiplyVrf, mul_z.base)
        dims.set(rows=rows)
        # zbar = 1 - z.
        b.v_rd(MemId.MultiplyVrf, mul_z.base)
        b.vv_b_sub_a(asvrf_ones.base)
        b.v_wr(MemId.MultiplyVrf, mul_zbar.base)
        # zh = z * h_prev.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.vv_mul(mul_z.base)
        b.v_wr(MemId.AddSubVrf, asvrf_zh.base)
        dims.set(rows=rows, cols=cols)
        # h' = (1-z) * tanh(xW_h + r * (U_h h_prev)) + z*h_prev.
        b.v_rd(MemId.InitialVrf, ivrf_h_prev.base)
        b.mv_mul(alloc.slot("U_h").base)
        b.vv_mul(mul_r.base)
        b.vv_add(xw["h"].base)
        b.v_tanh()
        b.vv_mul(mul_zbar.base)
        b.vv_add(asvrf_zh.base)
        b.v_wr(MemId.InitialVrf, ivrf_h_prev.base)
        b.v_wr(MemId.NetQ)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        if not hasattr(model, "W"):
            raise CompileError(
                f"{name} was compiled from shapes only (timing use); "
                "compile from a reference model to execute functionally")
        for gate in ("r", "z", "h"):
            sim.load_matrix(alloc.slot(f"W_{gate}").base, model.W[gate])
            sim.load_matrix(alloc.slot(f"U_{gate}").base, model.U[gate])
            sim.vrfs[MemId.AddSubVrf].write(
                bias[gate].base, _padded(model.b[gate], rows, n))
        sim.vrfs[MemId.AddSubVrf].write(
            asvrf_ones.base, np.ones((rows, n), dtype=np.float32))

    return CompiledModel(
        name=name, kind="gru", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=x_dim, output_length=h,
        input_vectors_per_step=cols_x, output_vectors_per_step=rows,
        ops_per_step=model.shape(1).ops_per_step,
    )


# ---------------------------------------------------------------------------
# MLP
# ---------------------------------------------------------------------------

_ACTIVATION_EMIT = {
    "relu": lambda b: b.v_relu(),
    "sigmoid": lambda b: b.v_sigm(),
    "tanh": lambda b: b.v_tanh(),
    "linear": lambda b: None,
}


def compile_mlp(model: MlpReference, config: NpuConfig,
                name: str = "mlp") -> CompiledModel:
    """Lower a dense MLP: one fused chain per layer."""
    n = config.native_dim
    dims_list = model.layer_dims
    alloc = RegisterAllocator(config)
    for i in range(len(dims_list) - 1):
        alloc.alloc_matrix(dims_list[i + 1], dims_list[i], f"W{i}")
    act_slots: List[Slot] = []
    for i, dim in enumerate(dims_list[1:-1]):
        act_slots.append(alloc.alloc(
            MemId.InitialVrf, _vector_count(dim, n), f"act{i}"))
    bias_slots = [alloc.alloc(MemId.AddSubVrf,
                              _vector_count(dims_list[i + 1], n), f"b{i}")
                  for i in range(len(dims_list) - 1)]

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    with b.loop("steps"):
        last = len(model.weights) - 1
        for i in range(len(model.weights)):
            rows_i = _vector_count(dims_list[i + 1], n)
            cols_i = _vector_count(dims_list[i], n)
            dims.set(rows=rows_i, cols=cols_i)
            if i == 0:
                b.v_rd(MemId.NetQ)
            else:
                b.v_rd(MemId.InitialVrf, act_slots[i - 1].base)
            b.mv_mul(alloc.slot(f"W{i}").base)
            b.vv_add(bias_slots[i].base)
            activation = (model.output_activation if i == last
                          else model.activation)
            _ACTIVATION_EMIT[activation](b)
            if i == last:
                b.v_wr(MemId.NetQ)
            else:
                b.v_wr(MemId.InitialVrf, act_slots[i].base)
    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        for i, (w, bias) in enumerate(zip(model.weights, model.biases)):
            sim.load_matrix(alloc.slot(f"W{i}").base, w)
            rows_i = _vector_count(dims_list[i + 1], n)
            sim.vrfs[MemId.AddSubVrf].write(
                bias_slots[i].base, _padded(bias, rows_i, n))

    return CompiledModel(
        name=name, kind="mlp", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=dims_list[0], output_length=dims_list[-1],
        input_vectors_per_step=_vector_count(dims_list[0], n),
        output_vectors_per_step=_vector_count(dims_list[-1], n),
        is_recurrent=False,
        ops_per_step=model.shape().total_ops,
    )


# ---------------------------------------------------------------------------
# Convolution (im2col-linearized, Section IV-B)
# ---------------------------------------------------------------------------

def compile_conv(spec: ConvSpec, weights: np.ndarray, config: NpuConfig,
                 bias: Optional[np.ndarray] = None, relu: bool = False,
                 name: str = "conv") -> "CompiledConv":
    """Lower one conv layer: a GEMV per output pixel over im2col patches.

    Patch vectors stream in over the network queue (one per output pixel);
    the kernel matrix ``K x (R*S*C)`` is pinned in the MRF. The host-side
    im2col stands in for the CPU sub-graph of the federated runtime.
    """
    n = config.native_dim
    k, patch = spec.as_matrix_shape()
    rows = _vector_count(k, n)
    cols = _vector_count(patch, n)

    alloc = RegisterAllocator(config)
    alloc.alloc_matrix(k, patch, "kernel")
    bias_slot = alloc.alloc(MemId.AddSubVrf, rows, "bias")

    b = ProgramBuilder(name)
    dims = _DimTracker(b)
    dims.set(rows=rows, cols=cols)
    with b.loop("steps"):
        b.v_rd(MemId.NetQ)
        b.mv_mul(alloc.slot("kernel").base)
        b.vv_add(bias_slot.base)
        if relu:
            b.v_relu()
        b.v_wr(MemId.NetQ)
    program = b.build()

    weights = np.asarray(weights, dtype=np.float32)
    matrix = weights.reshape(k, patch)
    bias_vec = (np.zeros(k, dtype=np.float32) if bias is None
                else np.asarray(bias, dtype=np.float32))

    def loader(sim: FunctionalSimulator) -> None:
        sim.load_matrix(alloc.slot("kernel").base, matrix)
        sim.vrfs[MemId.AddSubVrf].write(
            bias_slot.base, _padded(bias_vec, rows, n))

    compiled = CompiledConv(
        name=name, kind="conv", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=patch, output_length=k,
        input_vectors_per_step=cols, output_vectors_per_step=rows,
        is_recurrent=True,  # loops over output pixels
        ops_per_step=2 * k * patch,
    )
    compiled.spec = spec
    return compiled


@dataclasses.dataclass
class CompiledConv(CompiledModel):
    """A compiled conv layer with an image-level convenience API."""

    spec: ConvSpec = None  # set by compile_conv

    def run_image(self, activations: np.ndarray,
                  exact: bool = False) -> np.ndarray:
        """Convolve a full (H, W, C) activation map; returns
        (out_h, out_w, K)."""
        patches = im2col(activations, self.spec)
        outputs = self.run_sequence(list(patches), exact=exact)
        stacked = np.stack(outputs)
        return stacked.reshape(self.spec.out_height, self.spec.out_width,
                               self.spec.kernels)
