"""Register allocation for compiled NPU programs.

The toolflow pins model parameters into the MRF and assigns named slots
in the vector register files (Section II-B: parameters "pinned
individually into accelerators' on-chip memory"). The allocator hands out
contiguous index ranges per memory structure, enforces capacity, and
keeps a symbol table so generated programs remain debuggable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from ..config import NpuConfig
from ..errors import CapacityError
from ..isa.memspace import MemId


@dataclasses.dataclass(frozen=True)
class Slot:
    """A named, contiguous allocation in one memory structure."""

    name: str
    mem: MemId
    base: int
    count: int

    @property
    def end(self) -> int:
        return self.base + self.count


class RegisterAllocator:
    """Bump allocator over the MRF and the three VRFs of a config."""

    def __init__(self, config: NpuConfig):
        self.config = config
        self._next: Dict[MemId, int] = {
            MemId.MatrixRf: 0,
            MemId.InitialVrf: 0,
            MemId.AddSubVrf: 0,
            MemId.MultiplyVrf: 0,
        }
        self._capacity: Dict[MemId, int] = {
            MemId.MatrixRf: config.mrf_address_space,
            MemId.InitialVrf: config.initial_vrf_depth,
            MemId.AddSubVrf: config.addsub_vrf_depth,
            MemId.MultiplyVrf: config.multiply_vrf_depth,
        }
        #: Physical matrix elements pinned (packed storage; see
        #: NpuConfig.mrf_capacity_elements).
        self._mrf_elements = 0
        self._slots: Dict[str, Slot] = {}

    def alloc(self, mem: MemId, count: int, name: str) -> Slot:
        """Allocate ``count`` consecutive entries in ``mem``."""
        if mem not in self._next:
            raise CapacityError(f"cannot allocate in {mem.name}")
        if count <= 0:
            raise CapacityError(f"slot {name!r}: count must be positive")
        if name in self._slots:
            raise CapacityError(f"slot {name!r} allocated twice")
        base = self._next[mem]
        if base + count > self._capacity[mem]:
            raise CapacityError(
                f"{mem.name} exhausted allocating {name!r}: need "
                f"{base + count} entries, capacity "
                f"{self._capacity[mem]} ({self._describe_pressure(mem)})")
        self._next[mem] = base + count
        slot = Slot(name, mem, base, count)
        self._slots[name] = slot
        return slot

    def alloc_vector(self, mem: MemId, logical_length: int,
                     name: str) -> Slot:
        """Allocate enough native vectors to hold ``logical_length``
        elements."""
        count = max(1, math.ceil(logical_length / self.config.native_dim))
        return self.alloc(mem, count, name)

    def alloc_matrix(self, rows: int, cols: int, name: str) -> Slot:
        """Allocate MRF tiles for a ``rows x cols`` matrix (row-major by
        native tile, matching ``mv_mul``'s mega-SIMD layout).

        Address slots are charged for the padded tile grid; physical
        capacity is charged for the real (packed) element count.
        """
        elements = rows * cols
        if self._mrf_elements + elements > self.config.mrf_capacity_elements:
            raise CapacityError(
                f"MRF physical capacity exhausted allocating {name!r}: "
                f"{self._mrf_elements + elements} elements > "
                f"{self.config.mrf_capacity_elements} "
                f"({self._describe_pressure(MemId.MatrixRf)})")
        count = self.config.native_tiles_for(rows, cols)
        slot = self.alloc(MemId.MatrixRf, count, name)
        self._mrf_elements += elements
        return slot

    @property
    def mrf_elements_used(self) -> int:
        """Physical matrix elements pinned so far."""
        return self._mrf_elements

    def slot(self, name: str) -> Slot:
        """Look up an allocation by name."""
        if name not in self._slots:
            raise KeyError(f"no slot named {name!r}")
        return self._slots[name]

    def __contains__(self, name: str) -> bool:
        return name in self._slots

    def used(self, mem: MemId) -> int:
        """Entries consumed so far in ``mem``."""
        return self._next[mem]

    def utilization(self, mem: MemId) -> float:
        """Fraction of ``mem`` consumed."""
        return self._next[mem] / self._capacity[mem]

    @property
    def slots(self) -> Dict[str, Slot]:
        return dict(self._slots)

    def _describe_pressure(self, mem: MemId) -> str:
        owned = [s.name for s in self._slots.values() if s.mem is mem]
        head = ", ".join(owned[:6])
        suffix = ", ..." if len(owned) > 6 else ""
        return f"already holds: {head}{suffix}" if owned else "empty"
