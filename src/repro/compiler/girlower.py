"""Generic GIR-to-NPU lowering: compile arbitrary operator graphs.

The hand-tuned lowerings in :mod:`repro.compiler.lowering` mirror the
paper's per-model programs; this module is the general toolflow path:
any validated :class:`~repro.compiler.gir.GirGraph` whose operators the
NPU supports compiles to a program.

The pass works consumer-driven:

1. fuse operator runs into chain candidates
   (:func:`repro.compiler.passes.fuse_chains`);
2. place every value where its consumers need it — matrix constants in
   the MRF, vector constants and chain outputs in the AddSub/Multiply
   VRFs of the point-wise ops that read them, the InitialVrf for values
   feeding a matmul, and the network queue for graph inputs/outputs
   (multicast ``v_wr`` covers multi-placement);
3. emit one chain per candidate in topological order, with
   ``rows``/``columns`` tracking each chain's tile shape.

Graphs exported by the frontends — including multi-step unrolled RNNs
with shared weights — compile and execute exactly (verified against the
numpy references in the test suite).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..config import NpuConfig
from ..errors import CompileError
from ..functional.executor import FunctionalSimulator
from ..isa.memspace import MemId
from ..isa.program import ProgramBuilder
from .allocator import RegisterAllocator, Slot
from .gir import GirGraph, GirNode
from .lowering import CompiledModel, _DimTracker, _padded, _vector_count
from .passes import NPU_OPS, ChainCandidate, fuse_chains

#: GIR op -> ProgramBuilder point-wise emitter (operand index supplied).
_BINARY_EMIT = {
    "add": lambda b, idx: b.vv_add(idx),
    "mul": lambda b, idx: b.vv_mul(idx),
    "max": lambda b, idx: b.vv_max(idx),
}
_UNARY_EMIT = {
    "sigmoid": lambda b: b.v_sigm(),
    "tanh": lambda b: b.v_tanh(),
    "relu": lambda b: b.v_relu(),
}


@dataclasses.dataclass
class CompiledGir(CompiledModel):
    """A GIR-compiled model with a per-node input/output API."""

    #: (input node name, logical length, native-vector count) in order.
    input_specs: Tuple[Tuple[str, int, int], ...] = ()
    #: (source value name, logical length, native-vector count) in order.
    output_specs: Tuple[Tuple[str, int, int], ...] = ()

    def run_graph(self, inputs: List[np.ndarray],
                  exact: bool = False) -> List[np.ndarray]:
        """Evaluate the graph once; ``inputs`` align with the graph's
        input nodes in declaration order. Returns one array per output
        node."""
        if len(inputs) != len(self.input_specs):
            raise CompileError(
                f"{self.name}: expected {len(self.input_specs)} "
                f"input(s), got {len(inputs)}")
        sim = self.new_simulator(exact=exact)
        n = self.config.native_dim
        for value, (spec, _len_, count) in zip(inputs,
                                               self.input_specs):
            flat = np.asarray(value, dtype=np.float32).reshape(-1)
            if flat.shape[0] != _len_:
                raise CompileError(
                    f"{self.name}: input {spec!r} expects length "
                    f"{_len_}, got {flat.shape[0]}")
            padded = np.zeros(count * n, dtype=np.float32)
            padded[:_len_] = flat
            for i in range(count):
                sim.netq.push_input(padded[i * n:(i + 1) * n])
        sim.run(self.program, bindings={self.steps_binding: 1})
        vectors = sim.netq.pop_outputs()
        outputs: List[np.ndarray] = []
        i = 0
        for _name_, _len_, count in self.output_specs:
            flat = np.concatenate(vectors[i:i + count])
            outputs.append(flat[:_len_])
            i += count
        if i != len(vectors):
            raise CompileError(
                f"{self.name}: {len(vectors)} output vectors, expected "
                f"{i}")
        return outputs


@dataclasses.dataclass
class _Placement:
    """Where one graph value lives."""

    initial: Optional[Slot] = None
    addsub: Optional[Slot] = None
    multiply: Optional[Slot] = None
    to_network: bool = False

    def slots(self) -> List[Slot]:
        return [s for s in (self.initial, self.addsub, self.multiply)
                if s is not None]


def lower_gir(graph: GirGraph, config: NpuConfig,
              name: Optional[str] = None) -> CompiledModel:
    """Compile a GIR graph onto ``config``.

    The graph must validate, use only NPU-supported operators, and have
    at least one ``input`` and one ``output`` node. Inputs are consumed
    from the network queue in declaration order; outputs stream back in
    declaration order.
    """
    graph.validate()
    name = name if name is not None else graph.name
    unsupported = [n.name for n in graph.nodes() if n.op not in NPU_OPS]
    if unsupported:
        raise CompileError(
            f"{name}: operators not supported on the NPU: {unsupported}")
    inputs = graph.by_op("input")
    outputs = graph.by_op("output")
    if not inputs or not outputs:
        raise CompileError(f"{name}: need input and output nodes")

    n = config.native_dim
    alloc = RegisterAllocator(config)
    chains = _order_chains(graph, fuse_chains(graph, config))

    # ---- placement -------------------------------------------------------
    placements: Dict[str, _Placement] = {}

    def placement(value: str) -> _Placement:
        return placements.setdefault(value, _Placement())

    def vec_len(node_name: str) -> int:
        shape = graph.node(node_name).shape
        if len(shape) != 1:
            raise CompileError(
                f"{name}: {node_name!r} is not a vector value")
        return shape[0]

    matrix_slots: Dict[str, Slot] = {}
    for node in graph.nodes():
        if node.op == "matmul":
            matrix = graph.node(node.inputs[0])
            if not matrix.is_weight:
                raise CompileError(
                    f"{name}: matmul {node.name!r} needs a constant "
                    "matrix operand (dynamic matrices are not "
                    "supported by the MRF)")
            if matrix.name not in matrix_slots:
                matrix_slots[matrix.name] = alloc.alloc_matrix(
                    matrix.shape[0], matrix.shape[1],
                    f"mrf_{matrix.name}")

    # Consumers decide where each vector value must be written.
    for chain in chains:
        head = chain.nodes[0]
        if head.op == "matmul":
            dynamic = _resolve(graph, head.inputs[1])
            if graph.node(dynamic).op != "input":
                p = placement(dynamic)
                if p.initial is None:
                    p.initial = alloc.alloc(
                        MemId.InitialVrf, _vector_count(vec_len(dynamic), n),
                        f"ivrf_{dynamic}")
        else:
            src = _chain_head_source(graph, chain)
            if graph.node(src).op != "input":
                p = placement(src)
                if p.initial is None:
                    p.initial = alloc.alloc(
                        MemId.InitialVrf, _vector_count(vec_len(src), n),
                        f"ivrf_{src}")
        for node in chain.nodes:
            if node.op in _BINARY_EMIT or node.op == "sub":
                operand = _operand_of(graph, chain, node)
                p = placement(operand)
                count = _vector_count(vec_len(operand), n)
                if node.op == "mul":
                    if p.multiply is None:
                        p.multiply = alloc.alloc(
                            MemId.MultiplyVrf, count, f"mul_{operand}")
                elif p.addsub is None:
                    p.addsub = alloc.alloc(
                        MemId.AddSubVrf, count, f"as_{operand}")
    for out in outputs:
        placement(_resolve(graph, out.inputs[0])).to_network = True

    # Inputs consumed by more than their first chain (or by point-wise
    # operands) must be materialized on arrival.
    input_order = [node.name for node in inputs]

    # ---- emission ---------------------------------------------------------
    b = ProgramBuilder(name)
    dims = _DimTracker(b)

    with b.loop("steps"):
        for input_name in input_order:
            p = placements.get(input_name)
            count = _vector_count(vec_len(input_name), n)
            dims.set(rows=count)
            b.v_rd(MemId.NetQ)
            if p is None or not p.slots():
                # Input feeds matmul heads directly; stage it anyway so
                # every consumer chain can read it.
                slot = alloc.alloc(MemId.InitialVrf, count,
                                   f"ivrf_{input_name}")
                placement(input_name).initial = slot
            for slot in placement(input_name).slots():
                b.v_wr(slot.mem, slot.base)

        for chain in chains:
            _emit_chain(graph, chain, config, b, dims, alloc,
                        matrix_slots, placements, vec_len)

    program = b.build()

    def loader(sim: FunctionalSimulator) -> None:
        for matrix_name, slot in matrix_slots.items():
            values = graph.node(matrix_name).attrs.get("value")
            if values is None:
                raise CompileError(
                    f"{name}: constant {matrix_name!r} has no 'value' "
                    "attribute to load")
            sim.load_matrix(slot.base, np.asarray(values,
                                                  dtype=np.float32))
        for value_name, p in placements.items():
            node = graph.node(value_name)
            if node.op != "constant":
                continue
            values = node.attrs.get("value")
            if values is None:
                raise CompileError(
                    f"{name}: constant {value_name!r} has no 'value' "
                    "attribute to load")
            data = np.asarray(values, dtype=np.float32)
            for slot in p.slots():
                sim.vrfs[slot.mem].write(
                    slot.base, _padded(data, slot.count, n))

    input_specs = tuple(
        (i, vec_len(i), _vector_count(vec_len(i), n))
        for i in input_order)
    output_specs = tuple(
        (_resolve(graph, o.inputs[0]), vec_len(o.inputs[0]),
         _vector_count(vec_len(o.inputs[0]), n))
        for o in outputs)
    total_in = sum(spec[2] for spec in input_specs)
    total_out = sum(spec[2] for spec in output_specs)
    return CompiledGir(
        name=name, kind="gir", config=config, program=program,
        allocator=alloc, loader=loader,
        input_length=sum(spec[1] for spec in input_specs),
        output_length=sum(spec[1] for spec in output_specs),
        input_vectors_per_step=total_in,
        output_vectors_per_step=total_out,
        is_recurrent=False,
        ops_per_step=_graph_ops(graph),
        input_specs=input_specs,
        output_specs=output_specs,
    )


def _order_chains(graph: GirGraph,
                  chains: List[ChainCandidate]) -> List[ChainCandidate]:
    """Topologically order chains by cross-chain value dependencies.

    Fusion can pull a later value (e.g. the recurrent ``U h`` product)
    into an earlier chain as a side operand, so head insertion order is
    not execution order. Only chain tails are externally readable
    (fusion requires single consumers for interior values), so the
    producer of any external input is the chain containing it.
    """
    node_to_chain: Dict[str, int] = {}
    for idx, chain in enumerate(chains):
        for node in chain.nodes:
            node_to_chain[node.name] = idx
    deps: List[Set[int]] = [set() for _ in chains]
    for idx, chain in enumerate(chains):
        for node in chain.nodes:
            for inp in node.inputs:
                resolved = _resolve(graph, inp)
                producer = node_to_chain.get(resolved)
                if producer is not None and producer != idx:
                    deps[idx].add(producer)
    ordered: List[int] = []
    emitted: Set[int] = set()
    remaining = list(range(len(chains)))
    while remaining:
        progress = False
        for idx in list(remaining):
            if deps[idx] <= emitted:
                ordered.append(idx)
                emitted.add(idx)
                remaining.remove(idx)
                progress = True
        if not progress:
            raise CompileError(
                "cyclic chain dependencies; the graph is not a DAG")
    return [chains[i] for i in ordered]


def _resolve(graph: GirGraph, name: str) -> str:
    """Follow identity aliases to the real producing value."""
    node = graph.node(name)
    while node.op == "identity":
        name = node.inputs[0]
        node = graph.node(name)
    return name


def _graph_ops(graph: GirGraph) -> int:
    total = 0
    for node in graph.nodes():
        if node.op == "matmul":
            matrix = graph.node(node.inputs[0])
            total += 2 * matrix.shape[0] * matrix.shape[1]
        elif node.op in ("add", "sub", "mul", "max", "sigmoid", "tanh",
                         "relu"):
            total += node.shape[0] if node.shape else 0
    return total


def _chain_head_source(graph: GirGraph, chain: ChainCandidate) -> str:
    """The dynamic value entering a point-wise-headed chain."""
    head = chain.nodes[0]
    dynamic = [i for i in head.inputs
               if graph.node(i).op != "constant"]
    if not dynamic:
        raise CompileError(
            f"chain at {head.name!r} has no dynamic input")
    return _resolve(graph, dynamic[0])


def _operand_of(graph: GirGraph, chain: ChainCandidate,
                node: GirNode) -> str:
    """The side operand (not the chain value) of a binary node."""
    position = chain.nodes.index(node)
    if position == 0:
        through = _chain_head_source(graph, chain)
    else:
        through = chain.nodes[position - 1].name
    others = [i for i in node.inputs
              if _resolve(graph, i) != through]
    if len(others) != 1:
        raise CompileError(
            f"cannot identify the side operand of {node.name!r}")
    return _resolve(graph, others[0])


def _emit_chain(graph, chain, config, b, dims, alloc, matrix_slots,
                placements, vec_len) -> None:
    head = chain.nodes[0]
    n = config.native_dim
    if head.op == "matmul":
        matrix = graph.node(head.inputs[0])
        rows = _vector_count(matrix.shape[0], n)
        cols = _vector_count(matrix.shape[1], n)
        dims.set(rows=rows, cols=cols)
        source = _resolve(graph, head.inputs[1])
        src_slot = placements[source].initial
        b.v_rd(MemId.InitialVrf, src_slot.base)
        b.mv_mul(matrix_slots[matrix.name].base)
        body = chain.nodes[1:]
    else:
        source = _chain_head_source(graph, chain)
        rows = _vector_count(vec_len(chain.nodes[-1].name), n)
        dims.set(rows=rows)
        src_place = placements[source]
        slot = (src_place.initial or src_place.addsub
                or src_place.multiply)
        b.v_rd(slot.mem, slot.base)
        body = chain.nodes
        first = body[0]
        _emit_pointwise(graph, chain, first, b, placements)
        body = body[1:]

    for node in body:
        _emit_pointwise(graph, chain, node, b, placements)

    result = chain.nodes[-1].name
    p = placements.get(result)
    wrote = False
    if p is not None:
        for slot in p.slots():
            b.v_wr(slot.mem, slot.base)
            wrote = True
        if p.to_network:
            b.v_wr(MemId.NetQ)
            wrote = True
    if not wrote:
        raise CompileError(
            f"value {result!r} has no consumers; dead chains are not "
            "allowed")


def _emit_pointwise(graph, chain, node, b, placements) -> None:
    if node.op in _UNARY_EMIT:
        _UNARY_EMIT[node.op](b)
        return
    if node.op == "identity":
        return
    if node.op == "sub":
        position = chain.nodes.index(node)
        through = (_chain_head_source(graph, chain) if position == 0
                   else chain.nodes[position - 1].name)
        through = _resolve(graph, through)
        operand = _operand_of(graph, chain, node)
        slot = placements[operand].addsub
        if _resolve(graph, node.inputs[0]) == through:
            b.vv_a_sub_b(slot.base)   # chain value is the minuend
        else:
            b.vv_b_sub_a(slot.base)   # chain value is the subtrahend
        return
    if node.op in _BINARY_EMIT:
        operand = _operand_of(graph, chain, node)
        p = placements[operand]
        slot = p.multiply if node.op == "mul" else p.addsub
        _BINARY_EMIT[node.op](b, slot.base)
        return
    raise CompileError(f"cannot emit GIR op {node.op!r}")
