"""GIR analysis and transformation passes (Section II-B).

The toolflow runs "a series of optimizations and transformations based on
target constraints of the backend system". Implemented here:

* :func:`annotate_padding` — record padded tile grids and padding
  efficiency per matmul for a native dimension;
* :func:`pin_constants` — decide which weights pin on chip versus stream
  from DRAM, under the config's packed MRF capacity;
* :func:`fuse_chains` — group operator sequences into instruction-chain
  candidates and check them against the MFU budget;
* :func:`cpu_fallback_nodes` — operators the NPU cannot execute, grouped
  for the CPU sub-graph of the federated runtime.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Set, Tuple

from ..config import NpuConfig
from ..errors import CompileError
from .gir import GirGraph, GirNode

#: GIR ops directly executable on the NPU datapath.
NPU_OPS = frozenset({"input", "output", "constant", "matmul", "add",
                     "sub", "mul", "max", "sigmoid", "tanh", "relu",
                     "identity"})

#: Map from GIR point-wise op to the MFU unit category it consumes.
_FU_CATEGORY = {"add": "add_sub", "sub": "add_sub", "max": "add_sub",
                "mul": "multiply", "sigmoid": "activation",
                "tanh": "activation", "relu": "activation"}


def annotate_padding(graph: GirGraph, config: NpuConfig) -> float:
    """Annotate each matmul with its padded tile grid; returns the
    graph-wide padding efficiency (real MACs / padded MACs)."""
    n = config.native_dim
    real = 0
    padded = 0
    for node in graph.by_op("matmul"):
        matrix = graph.node(node.inputs[0])
        rows, cols = matrix.shape
        tile_rows = math.ceil(rows / n)
        tile_cols = math.ceil(cols / n)
        node.attrs["tile_grid"] = (tile_rows, tile_cols)
        node.attrs["padded_elements"] = tile_rows * tile_cols * n * n
        real += rows * cols
        padded += tile_rows * tile_cols * n * n
    efficiency = real / padded if padded else 1.0
    return efficiency


def pin_constants(graph: GirGraph, config: NpuConfig) -> Tuple[int, int]:
    """Assign weights to on-chip MRF (pinned) or DRAM (streamed).

    Weights are pinned greedily in graph order until the packed MRF
    capacity is exhausted; the rest are marked for DRAM streaming (the
    CNN regime). Returns ``(pinned_elements, streamed_elements)``.
    """
    capacity = config.mrf_capacity_elements
    pinned = 0
    streamed = 0
    for node in graph.weight_nodes():
        elements = node.weight_elements
        if pinned + elements <= capacity:
            node.attrs["placement"] = "mrf"
            pinned += elements
        else:
            node.attrs["placement"] = "dram"
            streamed += elements
    return pinned, streamed


@dataclasses.dataclass
class ChainCandidate:
    """A fused sequence of GIR nodes forming one instruction chain."""

    nodes: List[GirNode]

    @property
    def has_matmul(self) -> bool:
        return any(n.op == "matmul" for n in self.nodes)

    def mfus_required(self) -> int:
        """MFUs needed to route the chain's point-wise tail."""
        mfu = 0
        used: Set[str] = set()
        any_pw = False
        for node in self.nodes:
            category = _FU_CATEGORY.get(node.op)
            if category is None:
                continue
            any_pw = True
            while category in used:
                mfu += 1
                used = set()
            used.add(category)
        return mfu + 1 if any_pw else 0


def fuse_chains(graph: GirGraph, config: NpuConfig
                ) -> List[ChainCandidate]:
    """Greedy fusion of linear operator runs into chain candidates.

    Walks the graph in topological order, starting a chain at each matmul
    (or at a point-wise op whose producer isn't fusable) and extending it
    while the consumer relation is linear (single consumer, point-wise)
    and the MFU budget allows.

    Raises:
        CompileError: if a single point-wise op cannot fit any chain
            (pathological MFU budget of 0 handled by config validation).
    """
    chains: List[ChainCandidate] = []
    absorbed: Set[str] = set()
    for node in graph.nodes():
        if node.op not in {"matmul"} | set(_FU_CATEGORY):
            continue
        if node.name in absorbed:
            continue
        chain_nodes = [node]
        absorbed.add(node.name)
        current = node
        while True:
            consumers = graph.consumers(current.name)
            # Fusion requires the value to have exactly one consumer
            # overall (otherwise it must be materialized in a register
            # file) and that consumer to be a point-wise op.
            if len(consumers) != 1 or consumers[0].op not in _FU_CATEGORY:
                break
            nxt = consumers[0]
            if nxt.name in absorbed:
                break
            trial = ChainCandidate(chain_nodes + [nxt])
            if trial.mfus_required() > config.mfus:
                break
            chain_nodes.append(nxt)
            absorbed.add(nxt.name)
            current = nxt
        chains.append(ChainCandidate(chain_nodes))
    return chains


def cpu_fallback_nodes(graph: GirGraph) -> List[GirNode]:
    """Operators that must run on CPU (not supported by the NPU)."""
    return [n for n in graph.nodes() if n.op not in NPU_OPS]


def validate_for_npu(graph: GirGraph, config: NpuConfig) -> None:
    """Raise if any chain candidate exceeds the configuration's MFUs."""
    for chain in fuse_chains(graph, config):
        needed = chain.mfus_required()
        if needed > config.mfus:
            raise CompileError(
                f"chain starting at {chain.nodes[0].name!r} needs "
                f"{needed} MFUs but config has {config.mfus}")
