"""Graph intermediate representation (GIR) of the BW toolflow.

Section II-B: pre-trained models are exported into "BW's graph
intermediate representation (GIR)", which undergoes optimizations and
transformations — padding to native dimensions, constant pinning,
operator fusion into chain candidates, and partitioning across
accelerators — before being compiled to NPU and CPU binaries.

The GIR here is deliberately small: operator nodes with shapes and
attributes, a validity checker, and the queries the passes and the
partitioner need (weight footprint, per-matmul tile counts).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import CompileError

#: Operator kinds understood by the toolflow.
OP_KINDS = frozenset({
    "input", "output", "constant", "matmul", "add", "sub", "mul", "max",
    "sigmoid", "tanh", "relu", "concat", "identity",
})

_ARITY = {
    "input": 0, "constant": 0, "output": 1, "identity": 1,
    "sigmoid": 1, "tanh": 1, "relu": 1,
    "matmul": 2, "add": 2, "sub": 2, "mul": 2, "max": 2,
}


@dataclasses.dataclass
class GirNode:
    """One GIR operator node.

    Attributes:
        name: Unique name within the graph.
        op: Operator kind (see :data:`OP_KINDS`).
        inputs: Names of producer nodes, in operand order. For
            ``matmul`` the first input is the (constant) matrix.
        shape: Output shape — ``(n,)`` for vectors, ``(r, c)`` for
            matrices.
        attrs: Free-form attributes (e.g. ``pinned``, ``mrf_base``).
    """

    name: str
    op: str
    inputs: Tuple[str, ...] = ()
    shape: Tuple[int, ...] = ()
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def is_weight(self) -> bool:
        return self.op == "constant" and len(self.shape) == 2

    @property
    def weight_elements(self) -> int:
        if not self.is_weight:
            return 0
        return self.shape[0] * self.shape[1]


class GirGraph:
    """A DAG of GIR nodes in topological insertion order."""

    def __init__(self, name: str):
        self.name = name
        self._nodes: Dict[str, GirNode] = {}
        self._order: List[str] = []

    def add(self, name: str, op: str, inputs: Sequence[str] = (),
            shape: Sequence[int] = (), **attrs) -> GirNode:
        """Add a node; inputs must already exist."""
        if op not in OP_KINDS:
            raise CompileError(f"unknown GIR op {op!r}")
        if name in self._nodes:
            raise CompileError(f"duplicate GIR node {name!r}")
        if op in _ARITY and _ARITY[op] != len(inputs) \
                and op not in ("concat",):
            raise CompileError(
                f"{op} expects {_ARITY[op]} input(s), got {len(inputs)}")
        for dep in inputs:
            if dep not in self._nodes:
                raise CompileError(
                    f"node {name!r} references unknown input {dep!r}")
        node = GirNode(name=name, op=op, inputs=tuple(inputs),
                       shape=tuple(int(s) for s in shape), attrs=dict(attrs))
        self._nodes[name] = node
        self._order.append(name)
        return node

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> GirNode:
        if name not in self._nodes:
            raise CompileError(f"no GIR node named {name!r}")
        return self._nodes[name]

    def nodes(self) -> Iterator[GirNode]:
        return (self._nodes[n] for n in self._order)

    def by_op(self, op: str) -> List[GirNode]:
        return [n for n in self.nodes() if n.op == op]

    def consumers(self, name: str) -> List[GirNode]:
        return [n for n in self.nodes() if name in n.inputs]

    @property
    def weight_elements(self) -> int:
        """Total constant matrix elements (the pinning footprint)."""
        return sum(n.weight_elements for n in self.nodes())

    def weight_nodes(self) -> List[GirNode]:
        return [n for n in self.nodes() if n.is_weight]

    def validate(self) -> None:
        """Check shape consistency of every edge."""
        for node in self.nodes():
            if node.op == "matmul":
                matrix = self.node(node.inputs[0])
                vector = self.node(node.inputs[1])
                if len(matrix.shape) != 2 or len(vector.shape) != 1:
                    raise CompileError(
                        f"matmul {node.name!r}: expected matrix and "
                        f"vector operands")
                if matrix.shape[1] != vector.shape[0]:
                    raise CompileError(
                        f"matmul {node.name!r}: {matrix.shape} x "
                        f"{vector.shape} mismatch")
                if node.shape != (matrix.shape[0],):
                    raise CompileError(
                        f"matmul {node.name!r}: bad output shape "
                        f"{node.shape}")
            elif node.op in ("add", "sub", "mul", "max"):
                a = self.node(node.inputs[0])
                b = self.node(node.inputs[1])
                if a.shape != b.shape or node.shape != a.shape:
                    raise CompileError(
                        f"{node.op} {node.name!r}: shape mismatch "
                        f"{a.shape} vs {b.shape} -> {node.shape}")
            elif node.op in ("sigmoid", "tanh", "relu", "identity",
                             "output"):
                a = self.node(node.inputs[0])
                if node.shape != a.shape:
                    raise CompileError(
                        f"{node.op} {node.name!r}: shape mismatch")
            elif node.op == "concat":
                total = sum(self.node(i).shape[0] for i in node.inputs)
                if node.shape != (total,):
                    raise CompileError(
                        f"concat {node.name!r}: bad output shape")

    def __repr__(self) -> str:
        return f"GirGraph({self.name!r}, {len(self)} nodes)"
