"""Fleet dashboard renderer: text sparklines and standalone HTML.

Turns one monitored run — a :class:`~repro.obs.timeseries
.TimeSeriesStore`, the merged incidents, the ground-truth fault
intervals, and the detection scorecard — into something a human scans
in five seconds:

* :func:`render_text_dashboard` — ANSI-free terminal view with
  sparkline strips for availability, p99 latency, live nodes, and
  per-rack error rates, followed by the alert/fault timelines and the
  scorecard.
* :func:`render_html_dashboard` — a single self-contained HTML file
  (inline SVG polylines, zero external assets) with fault intervals
  and fired incidents drawn as shaded bands behind each chart.

Both renderers are pure functions of their inputs, so dashboards are
byte-deterministic for a fixed seed and safe to golden-test.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence

import numpy as np

from .scorecard import DetectionScorecard, FaultInterval
from .slo import (Alert, LATENCY_METRIC, availability_series,
                  request_series)
from .timeseries import TimeSeriesStore

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Fixed-width ASCII strip: one glyph per downsampled bin.

    ``nan`` renders as a space.  ``lo``/``hi`` pin the scale (so
    availability always plots 0..1); unpinned strips auto-scale.
    """
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return " " * width
    # Downsample by taking the mean of each bin (nan-safe).
    edges = np.linspace(0, vals.size, width + 1).astype(int)
    binned = np.full(width, np.nan)
    for i in range(width):
        chunk = vals[edges[i]:max(edges[i + 1], edges[i] + 1)]
        finite = chunk[np.isfinite(chunk)]
        if finite.size:
            binned[i] = finite.mean()
    finite = binned[np.isfinite(binned)]
    if finite.size == 0:
        return " " * width
    vlo = float(finite.min()) if lo is None else lo
    vhi = float(finite.max()) if hi is None else hi
    if vhi <= vlo:
        vhi = vlo + 1.0
    out = []
    for v in binned:
        if not np.isfinite(v):
            out.append(" ")
            continue
        frac = min(max((v - vlo) / (vhi - vlo), 0.0), 1.0)
        out.append(_SPARK_LEVELS[int(round(frac
                                           * (len(_SPARK_LEVELS) - 1)))])
    return "".join(out)


def _p99_series(store: TimeSeriesStore) -> np.ndarray:
    for qw in store.find(LATENCY_METRIC, scope="fleet"):
        return qw.series(99.0, window_len=max(
            1, store.windows // 32))
    return np.full(store.windows, np.nan)


def _live_nodes_series(store: TimeSeriesStore) -> np.ndarray:
    for g in store.find("cluster.nodes_live", scope="fleet"):
        return g.aligned(store.windows)
    return np.full(store.windows, np.nan)


def _batch_occupancy_series(store: TimeSeriesStore
                            ) -> Optional[np.ndarray]:
    """Mean dispatch size per window, recorded by
    :func:`repro.system.batching.record_batch_series` from a
    batched cluster run; ``None`` when the run was not batched."""
    for g in store.find("cluster.batch_occupancy", scope="fleet"):
        return g.aligned(store.windows)
    return None


def _error_rate(store: TimeSeriesStore, scope: str) -> np.ndarray:
    good, total = request_series(store, scope)
    out = np.full(store.windows, np.nan)
    has = total > 0
    out[has] = (total[has] - good[has]) / total[has]
    return out


def render_text_dashboard(store: TimeSeriesStore,
                          incidents: Sequence[Alert] = (),
                          faults: Sequence[FaultInterval] = (),
                          scorecard: Optional[DetectionScorecard] = None,
                          title: str = "fleet dashboard",
                          width: int = 60) -> str:
    """The terminal view; every strip spans the full run."""
    span = store.span_s
    avail = availability_series(store)
    p99 = _p99_series(store)
    live = _live_nodes_series(store)
    lines = [f"=== {title} ===",
             f"span: {span:.3f}s in {store.windows} x "
             f"{store.interval_s * 1e3:.3g}ms windows",
             "",
             f"availability  |{sparkline(avail, width, 0.0, 1.0)}|"
             f"  min={np.nanmin(avail) if np.isfinite(avail).any() else float('nan'):.4f}",
             f"p99 latency   |{sparkline(p99, width)}|"
             f"  peak={np.nanmax(p99) if np.isfinite(p99).any() else float('nan'):.3g}ms",
             f"live nodes    |{sparkline(live, width)}|"
             f"  last={live[np.isfinite(live)][-1] if np.isfinite(live).any() else float('nan'):.0f}"]
    occupancy = _batch_occupancy_series(store)
    if occupancy is not None:
        peak = (np.nanmax(occupancy)
                if np.isfinite(occupancy).any() else float("nan"))
        lines.append(f"batch size    |{sparkline(occupancy, width)}|"
                     f"  peak={peak:.1f}")
    racks = [s for s in store.label_values("cluster.requests", "scope")
             if s.startswith("rack")]
    if racks:
        lines.append("")
        lines.append("error rate by failure domain (0..1):")
        for rack in racks:
            err = _error_rate(store, rack)
            peak = (np.nanmax(err)
                    if np.isfinite(err).any() else float("nan"))
            lines.append(f"  {rack:<10}  "
                         f"|{sparkline(err, width, 0.0, 1.0)}|"
                         f"  peak={peak:.3f}")
    if faults:
        lines.append("")
        lines.append("injected faults (ground truth):")
        for f in faults:
            lines.append(f"  {f.render()}")
    lines.append("")
    if incidents:
        lines.append("fired incidents:")
        for inc in incidents:
            lines.append(f"  {inc.render()}")
    else:
        lines.append("fired incidents: none")
    if scorecard is not None:
        lines.append("")
        lines.append(scorecard.render())
    return "\n".join(lines)


# -- HTML ---------------------------------------------------------------------

_HTML_HEAD = """<!doctype html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
 body {{ font: 13px/1.5 system-ui, sans-serif; margin: 2em;
        background: #111; color: #ddd; }}
 h1 {{ font-size: 18px; }} h2 {{ font-size: 14px; margin: 1.2em 0 .3em; }}
 svg {{ background: #1a1a1a; border: 1px solid #333; display: block; }}
 .fault {{ fill: #a33; opacity: .25; }}
 .alert {{ fill: #ca4; opacity: .25; }}
 .line {{ fill: none; stroke: #6cf; stroke-width: 1.5; }}
 pre {{ background: #1a1a1a; border: 1px solid #333; padding: .8em;
       overflow-x: auto; }}
 .legend span {{ margin-right: 1.5em; }}
 .chip {{ display: inline-block; width: .8em; height: .8em;
         margin-right: .3em; vertical-align: -1px; }}
</style></head><body>
<h1>{title}</h1>
<div class="legend">
 <span><i class="chip" style="background:#a33;opacity:.5"></i>injected
 fault</span>
 <span><i class="chip" style="background:#ca4;opacity:.5"></i>fired
 incident</span>
 <span><i class="chip" style="background:#6cf"></i>series</span>
</div>
"""


def _svg_chart(title: str, times: np.ndarray, values: np.ndarray,
               span_s: float, incidents: Sequence[Alert],
               faults: Sequence[FaultInterval],
               lo: Optional[float] = None, hi: Optional[float] = None,
               w: int = 900, h: int = 120) -> str:
    vals = np.asarray(values, dtype=np.float64)
    finite = vals[np.isfinite(vals)]
    vlo = (float(finite.min()) if finite.size else 0.0) \
        if lo is None else lo
    vhi = (float(finite.max()) if finite.size else 1.0) \
        if hi is None else hi
    if vhi <= vlo:
        vhi = vlo + 1.0

    def x(t: float) -> float:
        return 0.0 if span_s <= 0 else (t / span_s) * w

    def y(v: float) -> float:
        return h - ((v - vlo) / (vhi - vlo)) * (h - 8) - 4

    parts = [f"<h2>{html.escape(title)} "
             f"<small>[{vlo:.4g} .. {vhi:.4g}]</small></h2>",
             f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">']
    for f in faults:
        parts.append(
            f'<rect class="fault" x="{x(f.start_s):.1f}" y="0" '
            f'width="{max(x(f.end_s) - x(f.start_s), 1.0):.1f}" '
            f'height="{h}"><title>{html.escape(f.kind)} '
            f'{html.escape(f.scope)}</title></rect>')
    for a in incidents:
        parts.append(
            f'<rect class="alert" x="{x(a.start_s):.1f}" '
            f'y="{h * 0.5:.1f}" '
            f'width="{max(x(a.end_s) - x(a.start_s), 1.0):.1f}" '
            f'height="{h * 0.5:.1f}"><title>{html.escape(a.rule)} '
            f'{html.escape(a.scope)}</title></rect>')
    pts = [f"{x(t):.1f},{y(v):.1f}"
           for t, v in zip(times, vals) if np.isfinite(v)]
    if pts:
        parts.append(f'<polyline class="line" '
                     f'points="{" ".join(pts)}"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_html_dashboard(store: TimeSeriesStore,
                          incidents: Sequence[Alert] = (),
                          faults: Sequence[FaultInterval] = (),
                          scorecard: Optional[DetectionScorecard] = None,
                          title: str = "fleet dashboard") -> str:
    """One self-contained HTML document (no external assets)."""
    span = store.span_s
    times = store.start_s + (np.arange(store.windows) + 0.5) \
        * store.interval_s
    parts: List[str] = [_HTML_HEAD.format(title=html.escape(title))]
    parts.append(_svg_chart("availability", times,
                            availability_series(store), span,
                            incidents, faults, lo=0.0, hi=1.0))
    parts.append(_svg_chart("p99 latency (ms)", times,
                            _p99_series(store), span, incidents,
                            faults, lo=0.0))
    parts.append(_svg_chart("live nodes", times,
                            _live_nodes_series(store), span,
                            incidents, faults, lo=0.0))
    occupancy = _batch_occupancy_series(store)
    if occupancy is not None:
        parts.append(_svg_chart("batch occupancy (requests/dispatch)",
                                times, occupancy, span, incidents,
                                faults, lo=0.0))
    racks = [s for s in store.label_values("cluster.requests", "scope")
             if s.startswith("rack")]
    for rack in racks:
        rack_faults = [f for f in faults if f.scope in (rack, "fleet")]
        rack_incs = [a for a in incidents if a.scope == rack]
        parts.append(_svg_chart(f"error rate — {rack}", times,
                                _error_rate(store, rack), span,
                                rack_incs, rack_faults,
                                lo=0.0, hi=1.0))
    if scorecard is not None:
        parts.append("<h2>detection scorecard</h2>")
        parts.append(f"<pre>{html.escape(scorecard.render())}</pre>")
    parts.append("<h2>series</h2>")
    parts.append(f"<pre>{html.escape(store.render())}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
