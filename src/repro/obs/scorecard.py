"""Chaos detection scorecard: alerts vs. ground-truth fault intervals.

The chaos injector knows exactly when each fault started and ended, so
the monitoring plane can be *scored* instead of trusted: join the
incidents :func:`~repro.obs.slo.merge_alerts` produced against the
injected fault intervals and report

* **MTTD** — mean time from fault start to the first overlapping
  incident's start (only over detected faults),
* **precision** — fraction of incidents that overlap some fault
  (within a grace period for trailing-window lag),
* **recall** — fraction of faults some incident overlaps,
* **false-alarm rate** — spurious incidents per simulated minute.

Matching is interval overlap on ``[fault.start, fault.end + grace)``.
Scope is *reported*, not required for a match: a rack-scoped alert
detecting a fleet-wide overload still counts, but the scorecard tracks
how many detections came from the matching failure domain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from .slo import Alert


@dataclasses.dataclass(frozen=True)
class FaultInterval:
    """One ground-truth injected fault: what, where, and when."""

    kind: str
    scope: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def render(self) -> str:
        return (f"{self.kind:<14} {self.scope:<6} "
                f"{self.start_s:8.3f}s .. {self.end_s:8.3f}s")


@dataclasses.dataclass(frozen=True)
class FaultMatch:
    """Join row: one fault and the first incident that detected it."""

    fault: FaultInterval
    incident: Optional[Alert]

    @property
    def detected(self) -> bool:
        return self.incident is not None

    @property
    def ttd_s(self) -> float:
        """Time to detect: first alert start minus fault start,
        clamped at zero (an alert already firing when the fault lands
        detects it instantly).  ``nan`` if undetected."""
        if self.incident is None:
            return float("nan")
        return max(0.0, self.incident.start_s - self.fault.start_s)

    @property
    def domain_match(self) -> bool:
        """Did the detecting incident come from the fault's own
        failure domain (same scope, or a fleet-level fault)?"""
        if self.incident is None:
            return False
        return (self.fault.scope == "fleet"
                or self.incident.scope in (self.fault.scope, "fleet"))


@dataclasses.dataclass
class DetectionScorecard:
    """Detection quality for one (scenario, stack) run."""

    scenario: str
    stack: str
    span_s: float
    grace_s: float
    matches: List[FaultMatch]
    incidents: List[Alert]
    true_positive_incidents: int

    @property
    def faults(self) -> int:
        return len(self.matches)

    @property
    def detected(self) -> int:
        return sum(1 for m in self.matches if m.detected)

    @property
    def recall(self) -> float:
        """1.0 when there was nothing to detect."""
        if not self.matches:
            return 1.0
        return self.detected / len(self.matches)

    @property
    def precision(self) -> float:
        """1.0 when nothing fired (no alerts, no false ones)."""
        if not self.incidents:
            return 1.0
        return self.true_positive_incidents / len(self.incidents)

    @property
    def false_alarms(self) -> int:
        return len(self.incidents) - self.true_positive_incidents

    @property
    def false_alarm_rate_per_min(self) -> float:
        if self.span_s <= 0:
            return 0.0
        return self.false_alarms / (self.span_s / 60.0)

    @property
    def mttd_s(self) -> float:
        """Mean time-to-detect over detected faults (``nan`` if none
        were detected — undetected faults are recall's problem)."""
        ttds = [m.ttd_s for m in self.matches if m.detected]
        if not ttds:
            return float("nan")
        return sum(ttds) / len(ttds)

    @property
    def domain_matches(self) -> int:
        return sum(1 for m in self.matches if m.domain_match)

    def render(self) -> str:
        lines = [f"detection scorecard: {self.scenario} "
                 f"[{self.stack}]  span={self.span_s:.3f}s "
                 f"grace={self.grace_s:.3f}s",
                 f"  faults={self.faults} detected={self.detected} "
                 f"recall={self.recall:.2f} "
                 f"precision={self.precision:.2f} "
                 f"mttd={self.mttd_s:.3f}s "
                 f"false_alarms={self.false_alarms} "
                 f"({self.false_alarm_rate_per_min:.2f}/min)"]
        for m in self.matches:
            if m.detected:
                where = ("domain" if m.domain_match else "other-scope")
                lines.append(f"  + {m.fault.render()}  detected in "
                             f"{m.ttd_s:.3f}s by {m.incident.scope} "
                             f"{m.incident.rule} ({where})")
            else:
                lines.append(f"  - {m.fault.render()}  MISSED")
        for inc in self.incidents:
            if not any(m.incident is inc for m in self.matches
                       if m.detected):
                mark = ("false alarm" if not _matches_any(
                    inc, [m.fault for m in self.matches],
                    self.grace_s) else "extra detection")
                lines.append(f"  ! {inc.render()}  [{mark}]")
        return "\n".join(lines)


def _matches_any(incident: Alert, faults: Sequence[FaultInterval],
                 grace_s: float) -> bool:
    return any(incident.overlaps(f.start_s, f.end_s + grace_s)
               for f in faults)


def score_detection(incidents: Sequence[Alert],
                    faults: Sequence[FaultInterval],
                    span_s: float, grace_s: float = 0.0,
                    scenario: str = "", stack: str = ""
                    ) -> DetectionScorecard:
    """Join incidents against ground truth into a scorecard."""
    incidents = sorted(incidents, key=lambda a: (a.start_s, a.scope))
    matches: List[FaultMatch] = []
    for fault in sorted(faults, key=lambda f: (f.start_s, f.scope)):
        hit = None
        for inc in incidents:
            if inc.overlaps(fault.start_s, fault.end_s + grace_s):
                hit = inc
                break
        matches.append(FaultMatch(fault, hit))
    tp = sum(1 for inc in incidents
             if _matches_any(inc, faults, grace_s))
    return DetectionScorecard(
        scenario=scenario, stack=stack, span_s=float(span_s),
        grace_s=float(grace_s), matches=matches,
        incidents=list(incidents), true_positive_incidents=tp)


def scorecard_table(cards: Sequence[DetectionScorecard],
                    title: str = "Chaos detection scorecard"):
    """Suite-level summary table (one row per scenario x stack)."""
    # Imported lazily: harness -> experiments -> system -> obs would
    # otherwise form a cycle at package-init time.
    from ..harness.tables import ExperimentTable
    rows = []
    for c in cards:
        mttd = "-" if c.mttd_s != c.mttd_s else f"{c.mttd_s:.3f}"
        rows.append([c.scenario, c.stack, str(c.faults),
                     str(c.detected), f"{c.recall:.2f}",
                     f"{c.precision:.2f}", mttd,
                     f"{c.false_alarm_rate_per_min:.2f}"])
    return ExperimentTable(
        title=title,
        headers=["scenario", "stack", "faults", "detected", "recall",
                 "precision", "mttd_s", "false/min"],
        rows=rows,
        notes=["MTTD is mean time-to-detect over detected faults; "
               "precision counts incidents overlapping any ground-"
               "truth fault interval (plus grace)."])
