"""Prometheus text exposition format for metrics and time series.

Renders a :class:`~repro.obs.metrics.Metrics` registry and/or a
:class:`~repro.obs.timeseries.TimeSeriesStore` in the Prometheus
text-based exposition format (version 0.0.4): counters as ``*_total``,
gauges verbatim, and both :class:`LatencyHistogram` and
:class:`QuantileWindow` as cumulative ``_bucket{le=...}`` histogram
families with ``_sum`` / ``_count``.

The simulator has no HTTP endpoint to scrape — the use case is
dropping a run's final state into any Prometheus-ecosystem tool
(promtool, Grafana import, textfile collector) and golden-file testing
the dashboard pipeline.  Output is byte-deterministic: families and
label sets are emitted in sorted order and floats use ``repr``-stable
formatting.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .metrics import LatencyHistogram, Metrics
from .timeseries import QuantileWindow, TimeSeriesStore

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """Metric name with every illegal character folded to ``_``."""
    out = _NAME_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _sanitize_label(name: str) -> str:
    out = _LABEL_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _fmt(value: float) -> str:
    """Prometheus-friendly number: integers bare, floats via repr."""
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label(k)}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _histogram_lines(name: str, labels: Dict[str, str],
                     bounds, counts, total_sum: float,
                     count: int) -> List[str]:
    """Cumulative ``le`` buckets + sum + count for one label set."""
    lines: List[str] = []
    cum = 0
    for bound, n in zip(list(bounds) + [float("inf")], counts):
        cum += int(n)
        le = dict(labels)
        le["le"] = "+Inf" if bound == float("inf") else _fmt(bound)
        lines.append(f"{name}_bucket{_labels_str(le)} {cum}")
    lines.append(f"{name}_sum{_labels_str(labels)} {_fmt(total_sum)}")
    lines.append(f"{name}_count{_labels_str(labels)} {count}")
    return lines


class _Family:
    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.lines: List[str] = []

    def render(self) -> List[str]:
        return ([f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"] + self.lines)


def render_prometheus(metrics: Optional[Metrics] = None,
                      store: Optional[TimeSeriesStore] = None,
                      prefix: str = "repro") -> str:
    """The full exposition document (trailing newline included)."""
    families: Dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = families.get(name)
        if fam is None:
            fam = _Family(name, kind, help_text)
            families[name] = fam
        return fam

    def qualified(name: str, suffix: str = "") -> str:
        return sanitize_name(f"{prefix}_{name}{suffix}"
                             if prefix else f"{name}{suffix}")

    if metrics is not None:
        for name in sorted(metrics.counters):
            fam = family(qualified(name, "_total"), "counter",
                         f"Counter {name}")
            fam.lines.append(
                f"{fam.name} {_fmt(metrics.counters[name].value)}")
        for name in sorted(metrics.gauges):
            fam = family(qualified(name), "gauge", f"Gauge {name}")
            fam.lines.append(
                f"{fam.name} {_fmt(metrics.gauges[name].value)}")
        for name in sorted(metrics.histograms):
            hist: LatencyHistogram = metrics.histograms[name]
            fam = family(qualified(name), "histogram",
                         f"Histogram {name}")
            fam.lines.extend(_histogram_lines(
                fam.name, {}, hist.bounds, hist.counts,
                hist.total, hist.count))

    if store is not None:
        for series in store.all_series():
            if series.kind == "counter":
                fam = family(qualified(series.name, "_total"),
                             "counter", f"Counter {series.name}")
                fam.lines.append(
                    f"{fam.name}{_labels_str(series.labels)} "
                    f"{_fmt(series.total())}")
            elif series.kind == "gauge":
                fam = family(qualified(series.name), "gauge",
                             f"Gauge {series.name}")
                fam.lines.append(
                    f"{fam.name}{_labels_str(series.labels)} "
                    f"{_fmt(series.latest())}")
            elif series.kind == "quantile":
                qw: QuantileWindow = series
                fam = family(qualified(series.name), "histogram",
                             f"Histogram {series.name}")
                fam.lines.extend(_histogram_lines(
                    fam.name, qw.labels, qw.bounds,
                    qw.counts.sum(axis=0), qw.total, qw.count))

    out: List[str] = []
    for name in sorted(families):
        out.extend(families[name].render())
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(path: str, metrics: Optional[Metrics] = None,
                     store: Optional[TimeSeriesStore] = None,
                     prefix: str = "repro") -> None:
    with open(path, "w") as fh:
        fh.write(render_prometheus(metrics=metrics, store=store,
                                   prefix=prefix))
