"""Observability: simulated-time tracing, metrics, trace export.

The paper evaluates the NPU through time-resolved internals — per-chain
issue/drain windows, MVM occupancy (Fig. 7), tail latency under load —
and this package is the uniform layer that surfaces them: a
:class:`Tracer` of nested spans keyed to *simulated* time (cycles,
instruction ticks, or seconds — never wall clock, so traces are
deterministic under fixed seeds), a :class:`Metrics` registry of
counters/gauges/latency histograms, and exporters to Chrome/Perfetto
``trace_event`` JSON, JSONL, and text summaries.

Every hook in the executor, timing model, and serving stack defaults to
:data:`NULL_TRACER` / :data:`NULL_METRICS`, so uninstrumented runs pay
only a no-op call and produce bit-identical results.
"""

from .trace import (
    InstantEvent,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    or_null,
)
from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
    or_null_metrics,
    percentile,
    percentile_or_nan,
)
from .export import (
    chrome_trace_events,
    summarize,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)

__all__ = [
    "InstantEvent", "NULL_TRACER", "NullTracer", "Span", "Tracer",
    "or_null",
    "Counter", "Gauge", "LatencyHistogram", "Metrics", "NULL_METRICS",
    "NullMetrics", "or_null_metrics", "percentile", "percentile_or_nan",
    "chrome_trace_events", "summarize", "to_chrome_trace", "to_jsonl",
    "write_chrome_trace",
]
