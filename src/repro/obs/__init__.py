"""Observability: simulated-time tracing, metrics, trace export.

The paper evaluates the NPU through time-resolved internals — per-chain
issue/drain windows, MVM occupancy (Fig. 7), tail latency under load —
and this package is the uniform layer that surfaces them: a
:class:`Tracer` of nested spans keyed to *simulated* time (cycles,
instruction ticks, or seconds — never wall clock, so traces are
deterministic under fixed seeds), a :class:`Metrics` registry of
counters/gauges/latency histograms, and exporters to Chrome/Perfetto
``trace_event`` JSON, JSONL, and text summaries.

Every hook in the executor, timing model, and serving stack defaults to
:data:`NULL_TRACER` / :data:`NULL_METRICS`, so uninstrumented runs pay
only a no-op call and produce bit-identical results.
"""

from .trace import (
    InstantEvent,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    or_null,
)
from .metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    Metrics,
    NULL_METRICS,
    NullMetrics,
    bucket_quantile,
    default_bounds,
    or_null_metrics,
    percentile,
    percentile_or_nan,
)
from .export import (
    chrome_trace_events,
    from_jsonl,
    summarize,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from .timeseries import (
    CounterSeries,
    GaugeSeries,
    QuantileWindow,
    TimeSeriesStore,
)
from .slo import (
    Alert,
    BacklogRule,
    BurnRateRule,
    CapacityRule,
    LatencyRule,
    SloMonitor,
    availability_series,
    default_burn_rules,
    error_budget_remaining,
    merge_alerts,
)
from .scorecard import (
    DetectionScorecard,
    FaultInterval,
    score_detection,
    scorecard_table,
)
from .prom import render_prometheus, write_prometheus
from .dashboard import (
    render_html_dashboard,
    render_text_dashboard,
    sparkline,
)

__all__ = [
    "InstantEvent", "NULL_TRACER", "NullTracer", "Span", "Tracer",
    "or_null",
    "Counter", "Gauge", "LatencyHistogram", "Metrics", "NULL_METRICS",
    "NullMetrics", "bucket_quantile", "default_bounds",
    "or_null_metrics", "percentile", "percentile_or_nan",
    "chrome_trace_events", "from_jsonl", "summarize", "to_chrome_trace",
    "to_jsonl", "write_chrome_trace",
    "CounterSeries", "GaugeSeries", "QuantileWindow", "TimeSeriesStore",
    "Alert", "BacklogRule", "BurnRateRule", "CapacityRule",
    "LatencyRule", "SloMonitor",
    "availability_series", "default_burn_rules",
    "error_budget_remaining", "merge_alerts",
    "DetectionScorecard", "FaultInterval", "score_detection",
    "scorecard_table",
    "render_prometheus", "write_prometheus",
    "render_html_dashboard", "render_text_dashboard", "sparkline",
]
