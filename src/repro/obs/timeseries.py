"""Fixed-interval time series over simulated time.

:mod:`repro.obs.metrics` holds *point-in-time* instruments: a counter
is one number at the end of a run.  Operating a fleet needs the time
dimension back — when did the error rate spike, how fast is the budget
burning, what was p99 *during* the partition — so this module adds the
storage layer a monitoring plane sits on:

* :class:`CounterSeries` / :class:`GaugeSeries` — fixed-interval
  ring-buffer series.  Counters store per-window increments with
  vectorized bulk ingestion (:meth:`CounterSeries.add_events` is one
  ``bincount`` over a whole run's event timestamps) and vectorized
  counter→rate conversion; gauges are last-write-wins samples taken at
  scrape instants.
* :class:`QuantileWindow` — a mergeable streaming latency-quantile
  estimator: per-window bucket counts over shared log-spaced bounds.
  Windows from different nodes merge by summing counts, so per-node
  histograms roll up into rack and fleet views without retaining
  samples (bounded memory by construction).
* :class:`TimeSeriesStore` — a labeled get-or-create registry of the
  above, sharing one window grid so every series in a run is aligned.

All timestamps are *simulated* seconds (or cycles — the unit is the
caller's), never wall clock: a fixed seed reproduces a byte-identical
store, which is what lets the chaos scorecard treat alert timing as a
deterministic quantity.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import bucket_quantile, default_bounds

__all__ = [
    "CounterSeries", "GaugeSeries", "QuantileWindow", "RingSeries",
    "TimeSeriesStore", "bucket_quantile", "label_key",
]

#: Canonical label-set key: sorted ``(key, value)`` string pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Order-independent hashable key for a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class RingSeries:
    """Base fixed-interval ring buffer keyed to a start time.

    Window ``k`` covers ``[start_s + k*interval_s, start_s +
    (k+1)*interval_s)``.  The ring retains the newest ``capacity``
    windows; older windows are evicted (counted in
    :attr:`evicted_windows`) and writes into evicted windows are
    counted in :attr:`dropped_writes` instead of raising — monitoring
    must never take the data plane down with it.
    """

    kind = "series"

    def __init__(self, name: str, interval_s: float,
                 start_s: float = 0.0, capacity: int = 1024,
                 labels: Optional[Dict[str, object]] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.interval_s = float(interval_s)
        self.start_s = float(start_s)
        self.capacity = int(capacity)
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()}
        self._values = np.full(self.capacity, np.nan, dtype=np.float64)
        self._first = 0       # oldest retained window index
        self._last = -1       # newest window index ever written
        self.evicted_windows = 0
        self.dropped_writes = 0

    # -- window arithmetic --------------------------------------------------

    def window_of(self, t: float) -> int:
        """Window index containing simulated time ``t``."""
        k = int(math.floor((t - self.start_s) / self.interval_s))
        if k < 0:
            raise ValueError(
                f"time {t} precedes series start {self.start_s}")
        return k

    def window_start(self, k: int) -> float:
        return self.start_s + k * self.interval_s

    def _slot(self, k: int) -> int:
        return k % self.capacity

    def _advance(self, k: int) -> None:
        """Extend the ring through window ``k``, clearing reused slots
        and evicting windows that fall off the back."""
        if k <= self._last:
            return
        lo = max(self._last + 1, k - self.capacity + 1)
        for j in range(lo, k + 1):
            self._values[self._slot(j)] = np.nan
        self._last = k
        first = max(0, k - self.capacity + 1)
        if first > self._first:
            self.evicted_windows += first - self._first
            self._first = first

    # -- reads --------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return self._last < 0

    @property
    def first_window(self) -> int:
        return self._first

    @property
    def last_window(self) -> int:
        return self._last

    def times(self) -> np.ndarray:
        """Start time of each retained window, oldest first."""
        if self.empty:
            return np.empty(0, dtype=np.float64)
        ks = np.arange(self._first, self._last + 1, dtype=np.float64)
        return self.start_s + ks * self.interval_s

    def values(self) -> np.ndarray:
        """Retained window values, oldest first (``nan`` = no write)."""
        if self.empty:
            return np.empty(0, dtype=np.float64)
        idx = np.arange(self._first, self._last + 1) % self.capacity
        return self._values[idx].copy()

    def aligned(self, windows: int) -> np.ndarray:
        """Values on the grid ``[0, windows)``: retained windows in
        place, zeros elsewhere (``nan`` writes become 0) — the shape
        every vectorized evaluator wants."""
        out = np.zeros(windows, dtype=np.float64)
        if self.empty:
            return out
        vals = np.nan_to_num(self.values(), nan=0.0)
        lo = min(self._first, windows)
        hi = min(self._last + 1, windows)
        out[lo:hi] = vals[:hi - lo]
        return out

    def label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f"{k}={v}"
                         for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"


class GaugeSeries(RingSeries):
    """Point-in-time samples: last write inside a window wins."""

    kind = "gauge"

    def record(self, t: float, value: float) -> None:
        k = self.window_of(t)
        if k < self._first:
            self.dropped_writes += 1
            return
        self._advance(k)
        self._values[self._slot(k)] = float(value)

    def record_values(self, values: Sequence[float],
                      first_window: int = 0) -> None:
        """Bulk-set one sample per window starting at
        ``first_window`` (last write wins, like :meth:`record` per
        window) — the flush path for a buffered scrape loop."""
        values = np.asarray(values, dtype=np.float64)
        if first_window < 0:
            raise ValueError("first_window must be >= 0")
        if values.size == 0:
            return
        last = first_window + values.size - 1
        self._advance(last)
        ks = np.arange(first_window, last + 1)
        live = ks >= self._first
        self.dropped_writes += int(np.count_nonzero(~live))
        self._values[ks[live] % self.capacity] = values[live]

    def latest(self) -> float:
        """Newest recorded sample (``nan`` if none)."""
        vals = self.values()
        finite = np.isfinite(vals)
        if not finite.any():
            return float("nan")
        return float(vals[np.nonzero(finite)[0][-1]])


class CounterSeries(RingSeries):
    """Monotonic event counts bucketed per window.

    Slots hold per-window *increments*; :meth:`cumulative` and
    :meth:`rates` are the vectorized counter→rate conversions the SLO
    evaluator and exporters consume.
    """

    kind = "counter"

    def record(self, t: float, amount: float = 1.0) -> None:
        k = self.window_of(t)
        if k < self._first:
            self.dropped_writes += 1
            return
        self._advance(k)
        slot = self._slot(k)
        if np.isnan(self._values[slot]):
            self._values[slot] = 0.0
        self._values[slot] += amount

    def add_events(self, times: Sequence[float],
                   weights: Optional[Sequence[float]] = None) -> None:
        """Bulk-ingest event timestamps in one vectorized pass."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        ks = np.floor((times - self.start_s)
                      / self.interval_s).astype(np.int64)
        if np.any(ks < 0):
            raise ValueError("event precedes series start")
        self._advance(int(ks.max()))
        live = ks >= self._first
        self.dropped_writes += int(np.count_nonzero(~live))
        ks = ks - self._first
        w = None if weights is None else \
            np.asarray(weights, dtype=np.float64)[live]
        binc = np.bincount(ks[live], weights=w,
                           minlength=self._last - self._first + 1)
        idx = np.arange(self._first, self._last + 1) % self.capacity
        vals = self._values[idx]
        vals = np.nan_to_num(vals, nan=0.0)
        vals[:binc.size] += binc
        self._values[idx] = vals

    def add_increments(self, counts: Sequence[float],
                       first_window: int = 0) -> None:
        """Bulk-add pre-binned per-window increments starting at
        ``first_window`` — the output of a shared multi-key
        ``bincount`` pass (one array op instead of re-binning events
        per label set)."""
        counts = np.asarray(counts, dtype=np.float64)
        if first_window < 0:
            raise ValueError("first_window must be >= 0")
        if counts.size == 0 or not counts.any():
            return
        last = first_window + counts.size - 1
        self._advance(last)
        ks = np.arange(first_window, last + 1)
        live = ks >= self._first
        self.dropped_writes += int(counts[~live].sum())
        idx = ks[live] % self.capacity
        self._values[idx] = (np.nan_to_num(self._values[idx], nan=0.0)
                             + counts[live])

    def increments(self) -> np.ndarray:
        """Per-window increments, oldest first (no-write windows = 0)."""
        return np.nan_to_num(self.values(), nan=0.0)

    def cumulative(self) -> np.ndarray:
        """Running total at the end of each retained window."""
        return np.cumsum(self.increments())

    def total(self) -> float:
        return float(self.increments().sum())

    def rates(self) -> np.ndarray:
        """Per-window event rate (events per time unit), vectorized."""
        return self.increments() / self.interval_s


class QuantileWindow:
    """Mergeable streaming quantiles: per-window bucket counts.

    Unlike :class:`~repro.obs.metrics.LatencyHistogram` this never
    retains samples — memory is ``windows x (len(bounds)+1)`` counts
    regardless of traffic — and two windows over the same grid and
    bounds merge by summing counts, which is what makes per-node
    latency roll up into rack and fleet views.
    """

    kind = "quantile"

    def __init__(self, name: str, interval_s: float,
                 start_s: float, windows: int,
                 bounds: Optional[Sequence[float]] = None,
                 labels: Optional[Dict[str, object]] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if windows < 1:
            raise ValueError("windows must be >= 1")
        self.name = name
        self.interval_s = float(interval_s)
        self.start_s = float(start_s)
        self.windows = int(windows)
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds if bounds is not None else default_bounds()))
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()}
        self.counts = np.zeros((self.windows, len(self.bounds) + 1),
                               dtype=np.int64)
        self.sums = np.zeros(self.windows, dtype=np.float64)

    def _window_idx(self, times: np.ndarray) -> np.ndarray:
        ks = np.floor((times - self.start_s)
                      / self.interval_s).astype(np.int64)
        # Clamp instead of dropping: the final scrape window absorbs
        # completions that land exactly at (or past) the grid end.
        return np.clip(ks, 0, self.windows - 1)

    def add(self, t: float, value: float) -> None:
        self.add_many(np.asarray([t]), np.asarray([value]))

    def add_many(self, times: Sequence[float],
                 values: Sequence[float]) -> None:
        """Vectorized ingestion of ``(time, value)`` observations."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.size == 0:
            return
        ws = self._window_idx(times)
        bs = np.searchsorted(self.bounds, values)
        nb = len(self.bounds) + 1
        flat = np.bincount(ws * nb + bs, minlength=self.windows * nb)
        self.counts += flat.reshape(self.windows, nb)
        self.sums += np.bincount(ws, weights=values,
                                 minlength=self.windows)

    def add_counts(self, counts: np.ndarray, sums: np.ndarray) -> None:
        """Ingest pre-binned ``(windows, buckets)`` counts (the output
        of a shared multi-key ``bincount`` pass)."""
        self.counts += counts
        self.sums += sums

    def same_grid(self, other: "QuantileWindow") -> bool:
        return (self.interval_s == other.interval_s
                and self.start_s == other.start_s
                and self.windows == other.windows
                and self.bounds == other.bounds)

    def merge(self, other: "QuantileWindow") -> "QuantileWindow":
        """Sum ``other`` into this window set (same grid + bounds)."""
        if not self.same_grid(other):
            raise ValueError(
                f"cannot merge {other.name}: grid/bounds mismatch")
        self.counts += other.counts
        self.sums += other.sums
        return self

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def total(self) -> float:
        return float(self.sums.sum())

    def window_counts(self) -> np.ndarray:
        """Observations per window."""
        return self.counts.sum(axis=1)

    def quantile(self, q: float, lo: int = 0,
                 hi: Optional[int] = None) -> float:
        """Quantile estimate over windows ``[lo, hi)`` (default all)."""
        hi = self.windows if hi is None else hi
        return bucket_quantile(self.bounds,
                               self.counts[lo:hi].sum(axis=0), q)

    def series(self, q: float, window_len: int = 1) -> np.ndarray:
        """Per-window rolling quantile estimates: entry ``w`` covers
        the ``window_len`` windows ending at ``w`` (expanding at the
        start).  ``nan`` where the rolling window saw no data."""
        if window_len < 1:
            raise ValueError("window_len must be >= 1")
        cum = np.cumsum(self.counts, axis=0)
        out = np.empty(self.windows, dtype=np.float64)
        for w in range(self.windows):
            lo = w - window_len + 1
            rolled = cum[w] if lo <= 0 else cum[w] - cum[lo - 1]
            out[w] = bucket_quantile(self.bounds, rolled, q)
        return out

    def times(self) -> np.ndarray:
        ks = np.arange(self.windows, dtype=np.float64)
        return self.start_s + ks * self.interval_s

    def label_str(self) -> str:
        if not self.labels:
            return ""
        inner = ",".join(f"{k}={v}"
                         for k, v in sorted(self.labels.items()))
        return "{" + inner + "}"


class TimeSeriesStore:
    """Get-or-create registry of labeled series on one window grid.

    Every series shares ``interval_s``/``start_s``/``windows``, so
    evaluators can align any pair of series by index with no
    resampling; ring capacity defaults to the full grid (nothing
    evicts on bounded simulation runs, but the ring semantics are
    real — see the wrap tests).
    """

    def __init__(self, interval_s: float, start_s: float = 0.0,
                 windows: int = 256,
                 capacity: Optional[int] = None):
        if windows < 1:
            raise ValueError("windows must be >= 1")
        self.interval_s = float(interval_s)
        self.start_s = float(start_s)
        self.windows = int(windows)
        self.capacity = int(capacity if capacity is not None
                            else windows)
        self._series: Dict[Tuple[str, LabelKey], object] = {}

    @property
    def span_s(self) -> float:
        return self.windows * self.interval_s

    def _get(self, name: str, labels: Dict[str, object], factory):
        key = (name, label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = factory()
            self._series[key] = series
        return series

    def counter(self, name: str, **labels) -> CounterSeries:
        series = self._get(name, labels, lambda: CounterSeries(
            name, self.interval_s, self.start_s,
            capacity=self.capacity, labels=labels))
        if not isinstance(series, CounterSeries):
            raise ValueError(f"{name} already registered as "
                             f"{series.kind}")
        return series

    def gauge(self, name: str, **labels) -> GaugeSeries:
        series = self._get(name, labels, lambda: GaugeSeries(
            name, self.interval_s, self.start_s,
            capacity=self.capacity, labels=labels))
        if not isinstance(series, GaugeSeries):
            raise ValueError(f"{name} already registered as "
                             f"{series.kind}")
        return series

    def quantile(self, name: str,
                 bounds: Optional[Sequence[float]] = None,
                 **labels) -> QuantileWindow:
        series = self._get(name, labels, lambda: QuantileWindow(
            name, self.interval_s, self.start_s, self.windows,
            bounds=bounds, labels=labels))
        if not isinstance(series, QuantileWindow):
            raise ValueError(f"{name} already registered as "
                             f"{series.kind}")
        return series

    def all_series(self) -> Iterator[object]:
        """Every registered series, sorted by (name, labels)."""
        for key in sorted(self._series):
            yield self._series[key]

    def find(self, name: str, **labels) -> List[object]:
        """Series matching ``name`` and a label subset."""
        want = {str(k): str(v) for k, v in labels.items()}
        out = []
        for (n, _), series in sorted(self._series.items()):
            if n != name:
                continue
            have = series.labels
            if all(have.get(k) == v for k, v in want.items()):
                out.append(series)
        return out

    def label_values(self, name: str, label: str) -> List[str]:
        """Distinct values of ``label`` across series named ``name``."""
        vals = {s.labels[label] for s in self.find(name)
                if label in s.labels}
        return sorted(vals)

    def render(self) -> str:
        """One line per series: name{labels} kind + scalar summary."""
        lines = [f"time series: {len(self._series)} series, "
                 f"{self.windows} x {self.interval_s:.6g}s windows "
                 f"from t={self.start_s:.6g}"]
        for series in self.all_series():
            label = f"{series.name}{series.label_str()}"
            if series.kind == "counter":
                lines.append(f"  {label}  counter total="
                             f"{series.total():g}")
            elif series.kind == "gauge":
                lines.append(f"  {label}  gauge last="
                             f"{series.latest():g}")
            else:
                lines.append(
                    f"  {label}  quantile n={series.count} "
                    f"p99~{series.quantile(99):.4g}")
        return "\n".join(lines)
