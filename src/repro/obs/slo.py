"""SLO monitoring: error budgets, burn rates, multi-window alerts.

The serving layers define the objective — a fraction of requests must
complete within the deadline (availability) and tail latency must stay
under a bound — and this module turns a
:class:`~repro.obs.timeseries.TimeSeriesStore` of request counters and
latency quantile windows into *alerts*:

* **Error budget**: with availability target ``T``, the budget is
  ``1 - T``; the *burn rate* over a window is
  ``error_fraction / (1 - T)`` — burn 1.0 spends the budget exactly at
  the sustainable pace, burn 10 exhausts it 10x too fast.
* **Multi-window, multi-burn-rate rules** (the SRE-workbook shape): a
  rule fires only while *both* a long window and a short window exceed
  the rule's burn-rate factor.  The long window rejects blips, the
  short window makes the alert *clear* quickly once the incident ends;
  a fast-burn rule pages at a high factor, a slow-burn rule tickets at
  a low one.
* **Latency rules**: the rolling p99 estimate from a merged
  :class:`~repro.obs.timeseries.QuantileWindow` crossing a threshold.

Evaluation is fully vectorized over the window grid (rolling sums via
``cumsum``) and purely deterministic — no RNG, no wall clock — so the
chaos detection scorecard can treat time-to-detect as an exact number.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .timeseries import QuantileWindow, TimeSeriesStore

#: Request-outcome label values that count toward availability.
GOOD_STATUSES = ("served", "brownout")

#: Metric names the cluster monitor publishes (shared with exporters).
REQUESTS_METRIC = "cluster.requests"
LATENCY_METRIC = "cluster.latency_ms"
BACKLOG_METRIC = "cluster.backlog_s"

_SEVERITIES = ("page", "ticket")


@dataclasses.dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Fires while the error-budget burn rate over the trailing
    ``long_s`` *and* the trailing ``short_s`` both meet ``factor``.
    """

    name: str
    long_s: float
    short_s: float
    factor: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError(
                f"rule {self.name}: need 0 < short_s <= long_s")
        if self.factor <= 0:
            raise ValueError(f"rule {self.name}: factor must be > 0")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name}: severity must be one of "
                f"{_SEVERITIES}")


@dataclasses.dataclass(frozen=True)
class LatencyRule:
    """Rolling tail-latency threshold rule (p``q`` over ``window_s``)."""

    name: str
    window_s: float
    threshold_ms: float
    q: float = 99.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"rule {self.name}: window_s must be > 0")
        if self.threshold_ms <= 0:
            raise ValueError(
                f"rule {self.name}: threshold_ms must be > 0")
        if not 0 < self.q < 100:
            raise ValueError(f"rule {self.name}: q must be in (0, 100)")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name}: severity must be one of "
                f"{_SEVERITIES}")


@dataclasses.dataclass(frozen=True)
class BacklogRule:
    """Per-node backlog outlier rule over the scraped node gauges.

    Availability and p99 can stay clean while a mitigation (p2c
    routing, shedding) *masks* a degraded node — the user never sees
    it, but the fleet is running on reduced margin.  This rule looks
    underneath: it fires while the worst per-node backlog exceeds an
    absolute floor *and* a multiple of the fleet median for at least
    ``min_windows`` consecutive windows (saturation everywhere, as in
    pure overload, keeps the ratio near 1 and does not fire).
    """

    name: str = "node_backlog"
    abs_floor_s: float = 5e-3
    rel_factor: float = 6.0
    min_windows: int = 2
    severity: str = "ticket"

    def __post_init__(self) -> None:
        if self.abs_floor_s <= 0 or self.rel_factor < 1:
            raise ValueError(
                f"rule {self.name}: need abs_floor_s > 0 and "
                f"rel_factor >= 1")
        if self.min_windows < 1:
            raise ValueError(
                f"rule {self.name}: min_windows must be >= 1")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name}: severity must be one of "
                f"{_SEVERITIES}")


@dataclasses.dataclass(frozen=True)
class CapacityRule:
    """Fleet-capacity rule over a scraped node-count gauge.

    The most direct fault signal there is: the failure detector's view
    of live nodes dropping below ``min_fraction`` of the best count
    ever observed.  Fires even when failover and brownout absorb the
    loss so completely that no user-facing metric moves — a fleet
    running a rack short is an incident whether or not users notice.
    """

    name: str = "fleet_capacity"
    metric: str = "cluster.nodes_live"
    min_fraction: float = 0.95
    min_windows: int = 1
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0 < self.min_fraction <= 1:
            raise ValueError(
                f"rule {self.name}: min_fraction must be in (0, 1]")
        if self.min_windows < 1:
            raise ValueError(
                f"rule {self.name}: min_windows must be >= 1")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name}: severity must be one of "
                f"{_SEVERITIES}")


@dataclasses.dataclass(frozen=True)
class Alert:
    """One fired alert interval on one scope (fleet or a rack)."""

    rule: str
    severity: str
    scope: str
    start_s: float
    end_s: float
    #: Peak burn rate (burn rules) or peak p-q ms (latency rules).
    peak: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def overlaps(self, start_s: float, end_s: float) -> bool:
        return self.start_s < end_s and start_s < self.end_s

    def render(self) -> str:
        return (f"[{self.severity}] {self.scope:<6} "
                f"{self.start_s:8.3f}s .. {self.end_s:8.3f}s  "
                f"{self.rule} (peak {self.peak:.1f})")


def default_burn_rules(span_s: float) -> List[BurnRateRule]:
    """Fast-page + slow-ticket rule pair scaled to a run's duration.

    Production rules quote wall-clock windows (1 h/5 m, 6 h/30 m); a
    simulated scenario lasts seconds, so the windows scale with the
    run: the fast rule looks at 4%/1% of the span at burn 8, the slow
    rule at 12%/3% at burn 2.5.
    """
    if span_s <= 0:
        raise ValueError("span_s must be positive")
    return [
        BurnRateRule("fast_burn", long_s=0.04 * span_s,
                     short_s=0.01 * span_s, factor=8.0,
                     severity="page"),
        BurnRateRule("slow_burn", long_s=0.12 * span_s,
                     short_s=0.03 * span_s, factor=2.5,
                     severity="ticket"),
    ]


def rolling_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing-window sums (expanding until ``window`` is filled)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    cum = np.cumsum(values, dtype=np.float64)
    out = cum.copy()
    if window < out.size:
        out[window:] = cum[window:] - cum[:-window]
    return out


def _erode(fire: np.ndarray, min_windows: int) -> np.ndarray:
    """Keep only windows where ``fire`` has held for ``min_windows``
    consecutive windows (debounce against single-window blips)."""
    if min_windows <= 1:
        return fire
    held = fire.copy()
    for k in range(1, min_windows):
        held[k:] &= fire[:-k]
        held[:k] = False
    return held


def _fire_intervals(fire: np.ndarray, peaks: np.ndarray,
                    start_s: float, interval_s: float
                    ) -> List[Tuple[float, float, float]]:
    """Contiguous ``True`` runs of ``fire`` as (start, end, peak)."""
    out: List[Tuple[float, float, float]] = []
    idx = np.nonzero(fire)[0]
    if idx.size == 0:
        return out
    breaks = np.nonzero(np.diff(idx) > 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    for a, b in zip(starts, ends):
        lo, hi = int(idx[a]), int(idx[b])
        out.append((start_s + lo * interval_s,
                    start_s + (hi + 1) * interval_s,
                    float(peaks[lo:hi + 1].max())))
    return out


def request_series(store: TimeSeriesStore, scope: str
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """(good, total) request counts per window for one scope."""
    windows = store.windows
    good = np.zeros(windows, dtype=np.float64)
    total = np.zeros(windows, dtype=np.float64)
    for series in store.find(REQUESTS_METRIC, scope=scope):
        inc = series.aligned(windows)
        total += inc
        if series.labels.get("status") in GOOD_STATUSES:
            good += inc
    return good, total


def availability_series(store: TimeSeriesStore, scope: str = "fleet"
                        ) -> np.ndarray:
    """Per-window availability for a scope (``nan`` where no traffic)."""
    good, total = request_series(store, scope)
    out = np.full(store.windows, np.nan, dtype=np.float64)
    has = total > 0
    out[has] = good[has] / total[has]
    return out


class SloMonitor:
    """Evaluates burn-rate and latency alert rules over a store.

    ``availability_target`` is the SLO (e.g. ``0.999``); burn rules
    default to :func:`default_burn_rules` over the store's span, and a
    latency rule is built from ``latency_threshold_ms`` when given.
    Scopes are discovered from the request counters' ``scope`` label
    (the fleet plus each rack), giving the per-failure-domain
    breakdown for free.
    """

    def __init__(self, availability_target: float = 0.999,
                 burn_rules: Optional[Sequence[BurnRateRule]] = None,
                 latency_rules: Optional[Sequence[LatencyRule]] = None,
                 latency_threshold_ms: Optional[float] = None,
                 backlog_rules: Optional[Sequence[BacklogRule]] = None,
                 capacity_rules: Optional[Sequence[CapacityRule]]
                 = None):
        if not 0 < availability_target < 1:
            raise ValueError(
                "availability_target must be in (0, 1)")
        self.availability_target = availability_target
        self.burn_rules = (None if burn_rules is None
                           else list(burn_rules))
        self.latency_rules = (list(latency_rules)
                              if latency_rules is not None else [])
        self.latency_threshold_ms = latency_threshold_ms
        self.backlog_rules = (list(backlog_rules)
                              if backlog_rules is not None else [])
        self.capacity_rules = (list(capacity_rules)
                               if capacity_rules is not None else [])

    @property
    def budget(self) -> float:
        return 1.0 - self.availability_target

    def resolved_rules(self, span_s: float) -> List[BurnRateRule]:
        if self.burn_rules is not None:
            return list(self.burn_rules)
        return default_burn_rules(span_s)

    def resolved_latency_rules(self, span_s: float) -> List[LatencyRule]:
        rules = list(self.latency_rules)
        if self.latency_threshold_ms is not None:
            rules.append(LatencyRule(
                "p99_latency", window_s=0.04 * span_s,
                threshold_ms=self.latency_threshold_ms, q=99.0,
                severity="page"))
        return rules

    def grace_s(self, span_s: float) -> float:
        """How long after a fault ends an alert may legitimately keep
        firing (trailing windows lag by their own length)."""
        longs = [r.long_s for r in self.resolved_rules(span_s)]
        longs += [r.window_s for r in self.resolved_latency_rules(span_s)]
        return max(longs) if longs else 0.0

    # -- evaluation ---------------------------------------------------------

    def _windows_of(self, store: TimeSeriesStore, seconds: float) -> int:
        return max(1, int(round(seconds / store.interval_s)))

    def evaluate(self, store: TimeSeriesStore) -> List[Alert]:
        """All fired alert intervals, deterministic order."""
        alerts: List[Alert] = []
        span = store.span_s
        scopes = store.label_values(REQUESTS_METRIC, "scope")
        for scope in scopes:
            good, total = request_series(store, scope)
            bad = total - good
            for rule in self.resolved_rules(span):
                alerts.extend(self._eval_burn(
                    store, rule, scope, bad, total))
        for rule in self.resolved_latency_rules(span):
            for qw in store.find(LATENCY_METRIC, scope="fleet"):
                alerts.extend(self._eval_latency(store, rule, qw))
        for rule in self.backlog_rules:
            alerts.extend(self._eval_backlog(store, rule))
        for rule in self.capacity_rules:
            alerts.extend(self._eval_capacity(store, rule))
        alerts.sort(key=lambda a: (a.start_s, a.scope, a.rule))
        return alerts

    def _eval_burn(self, store: TimeSeriesStore, rule: BurnRateRule,
                   scope: str, bad: np.ndarray, total: np.ndarray
                   ) -> List[Alert]:
        wl = self._windows_of(store, rule.long_s)
        ws = self._windows_of(store, rule.short_s)
        tl = rolling_sum(total, wl)
        ts = rolling_sum(total, ws)
        burn_l = rolling_sum(bad, wl) / np.maximum(tl, 1.0) / self.budget
        burn_s = rolling_sum(bad, ws) / np.maximum(ts, 1.0) / self.budget
        fire = ((burn_l >= rule.factor) & (burn_s >= rule.factor)
                & (tl > 0))
        return [Alert(rule.name, rule.severity, scope, a, b, peak)
                for a, b, peak in _fire_intervals(
                    fire, burn_l, store.start_s, store.interval_s)]

    def _eval_latency(self, store: TimeSeriesStore, rule: LatencyRule,
                      qw: QuantileWindow) -> List[Alert]:
        w = self._windows_of(store, rule.window_s)
        series = qw.series(rule.q, window_len=w)
        with np.errstate(invalid="ignore"):
            fire = np.nan_to_num(series, nan=0.0) > rule.threshold_ms
        return [Alert(rule.name, rule.severity, "fleet", a, b, peak)
                for a, b, peak in _fire_intervals(
                    fire, np.nan_to_num(series, nan=0.0),
                    store.start_s, store.interval_s)]

    def _eval_backlog(self, store: TimeSeriesStore,
                      rule: BacklogRule) -> List[Alert]:
        gauges = [g for g in store.find(BACKLOG_METRIC)
                  if "node" in g.labels]
        if not gauges:
            return []
        grid = np.vstack([g.aligned(store.windows) for g in gauges])
        worst = grid.max(axis=0)
        median = np.median(grid, axis=0)
        fire = ((worst > rule.abs_floor_s)
                & (worst > rule.rel_factor * np.maximum(median, 1e-12)))
        fire = _erode(fire, rule.min_windows)
        return [Alert(rule.name, rule.severity, "fleet", a, b, peak)
                for a, b, peak in _fire_intervals(
                    fire, worst, store.start_s, store.interval_s)]

    def _eval_capacity(self, store: TimeSeriesStore,
                       rule: CapacityRule) -> List[Alert]:
        alerts: List[Alert] = []
        for gauge in store.find(rule.metric, scope="fleet"):
            vals = gauge.aligned(store.windows)
            ref = float(vals.max())
            if ref <= 0:
                continue
            fire = (vals > 0) & (vals < rule.min_fraction * ref)
            fire = _erode(fire, rule.min_windows)
            missing = ref - vals
            alerts.extend(
                Alert(rule.name, rule.severity, "fleet", a, b, peak)
                for a, b, peak in _fire_intervals(
                    fire, missing, store.start_s, store.interval_s))
        return alerts


def merge_alerts(alerts: Sequence[Alert],
                 join_gap_s: float = 0.0) -> List[Alert]:
    """Coalesce per-rule alerts into per-scope *incidents*.

    Overlapping (or within ``join_gap_s`` of each other) alerts on the
    same scope merge into one incident carrying the union interval,
    the highest severity, the max peak, and the joined rule names —
    the unit the detection scorecard counts, so one fault detected by
    three rules is one true positive, not three.
    """
    by_scope: Dict[str, List[Alert]] = {}
    for alert in alerts:
        by_scope.setdefault(alert.scope, []).append(alert)
    out: List[Alert] = []
    for scope in sorted(by_scope):
        group = sorted(by_scope[scope], key=lambda a: a.start_s)
        cur: Optional[Alert] = None
        rules: List[str] = []
        for alert in group:
            if cur is None or alert.start_s > cur.end_s + join_gap_s:
                if cur is not None:
                    out.append(dataclasses.replace(
                        cur, rule="+".join(sorted(set(rules)))))
                cur = alert
                rules = [alert.rule]
            else:
                rules.append(alert.rule)
                cur = dataclasses.replace(
                    cur,
                    end_s=max(cur.end_s, alert.end_s),
                    severity=("page" if "page" in (cur.severity,
                                                   alert.severity)
                              else cur.severity),
                    peak=max(cur.peak, alert.peak))
        if cur is not None:
            out.append(dataclasses.replace(
                cur, rule="+".join(sorted(set(rules)))))
    out.sort(key=lambda a: (a.start_s, a.scope))
    return out


def error_budget_remaining(store: TimeSeriesStore, target: float,
                           scope: str = "fleet") -> float:
    """Fraction of the run's error budget left (can go negative)."""
    good, total = request_series(store, scope)
    n = float(total.sum())
    if n == 0:
        return 1.0
    err = (n - float(good.sum())) / n
    budget = 1.0 - target
    return 1.0 - err / budget
