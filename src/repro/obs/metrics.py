"""Metrics registry: counters, gauges, and latency histograms.

One :class:`Metrics` instance aggregates a run's counters (monotonic
totals: ops executed, faults injected, breaker transitions), gauges
(point-in-time values: HDD fanout, replica counts), and latency
histograms (fixed log-spaced buckets for summaries, plus the exact
sample set so percentiles match ``numpy.percentile`` bit-for-bit — the
benchmark tables must not move when they switch to this helper).

:data:`NULL_METRICS` mirrors :data:`~repro.obs.trace.NULL_TRACER`:
instrumented call sites always hold a registry, and the null one makes
every ``inc``/``set``/``observe`` a no-op.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile (``numpy.percentile``).

    The single shared implementation behind every ``p50``/``p99``
    property in the repo (serving results, histograms, load results).
    """
    if len(samples) == 0:
        raise ValueError("percentile of an empty sample set")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def percentile_or_nan(samples: Sequence[float], q: float) -> float:
    """Like :func:`percentile`, but ``nan`` for an empty sample set.

    Degenerate result sets (nothing served, everything shed) are
    expected in chaos scenarios; callers pair this with an explicit
    flag (e.g. ``has_latencies``) instead of raising mid-report or
    returning a misleading ``0.0``.
    """
    if len(samples) == 0:
        return float("nan")
    return percentile(samples, q)


@dataclasses.dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


def _default_bounds() -> Tuple[float, ...]:
    # Log-spaced 1e-3 .. 1e3 (unit-agnostic: ms for serving, kilocycles
    # for the core — callers pick the unit when they observe).
    return tuple(float(f"{m:g}") for e in range(-3, 4)
                 for m in (10.0 ** e, 2.5 * 10 ** e, 5 * 10.0 ** e))


class LatencyHistogram:
    """Fixed-bucket histogram that also retains exact samples.

    Buckets give the cheap at-a-glance shape in text summaries; the
    retained samples give exact percentiles (simulation runs are
    bounded, so keeping them is affordable and keeps benchmark numbers
    identical to the pre-histogram code paths).
    """

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds if bounds is not None else _default_bounds()))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self.counts[int(np.searchsorted(self.bounds, value))] += 1

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self.samples, q)

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Non-empty ``(upper_bound, count)`` pairs; the final bound is
        ``inf`` (overflow)."""
        edges = list(self.bounds) + [float("inf")]
        return [(edge, n) for edge, n in zip(edges, self.counts) if n]

    def render(self) -> str:
        if not self.count:
            return f"{self.name}: (empty)"
        return (f"{self.name}: n={self.count} mean={self.mean:.4g} "
                f"p50={self.percentile(50):.4g} "
                f"p99={self.percentile(99):.4g} "
                f"max={max(self.samples):.4g}")


class Metrics:
    """Get-or-create registry of named instruments."""

    enabled: bool = True

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None
                  ) -> LatencyHistogram:
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram(name, bounds)
        return self.histograms[name]

    def render(self) -> str:
        """Text summary table of every instrument, sorted by name."""
        lines: List[str] = []
        if self.counters:
            lines.append("counters:")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name].value
                text = f"{value:g}" if value != int(value) \
                    else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {text}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self.gauges)
            for name in sorted(self.gauges):
                lines.append(
                    f"  {name:<{width}}  {self.gauges[name].value:g}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                lines.append(f"  {self.histograms[name].render()}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(LatencyHistogram):
    def observe(self, value: float) -> None:
        pass


class NullMetrics(Metrics):
    """No-op registry: every instrument lookup returns a shared
    write-ignoring instance."""

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null", bounds=(1.0,))

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name, bounds=None) -> LatencyHistogram:
        return self._histogram


#: Shared no-op registry instance.
NULL_METRICS = NullMetrics()


def or_null_metrics(metrics: Optional[Metrics]) -> Metrics:
    """``metrics`` if given, else the shared :data:`NULL_METRICS`."""
    return metrics if metrics is not None else NULL_METRICS
