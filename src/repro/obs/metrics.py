"""Metrics registry: counters, gauges, and latency histograms.

One :class:`Metrics` instance aggregates a run's counters (monotonic
totals: ops executed, faults injected, breaker transitions), gauges
(point-in-time values: HDD fanout, replica counts), and latency
histograms (fixed log-spaced buckets for summaries, plus the exact
sample set so percentiles match ``numpy.percentile`` bit-for-bit — the
benchmark tables must not move when they switch to this helper).

:data:`NULL_METRICS` mirrors :data:`~repro.obs.trace.NULL_TRACER`:
instrumented call sites always hold a registry, and the null one makes
every ``inc``/``set``/``observe`` a no-op.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """Exact linear-interpolated percentile (``numpy.percentile``).

    The single shared implementation behind every ``p50``/``p99``
    property in the repo (serving results, histograms, load results).
    """
    if len(samples) == 0:
        raise ValueError("percentile of an empty sample set")
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def percentile_or_nan(samples: Sequence[float], q: float) -> float:
    """Like :func:`percentile`, but ``nan`` for an empty sample set.

    Degenerate result sets (nothing served, everything shed) are
    expected in chaos scenarios; callers pair this with an explicit
    flag (e.g. ``has_latencies``) instead of raising mid-report or
    returning a misleading ``0.0``.
    """
    if len(samples) == 0:
        return float("nan")
    return percentile(samples, q)


@dataclasses.dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


def default_bounds() -> Tuple[float, ...]:
    """Shared log-spaced histogram bounds, 1e-3 .. 1e3.

    Unit-agnostic: ms for serving, kilocycles for the core — callers
    pick the unit when they observe.  The time-series layer reuses the
    same bounds so per-run histograms and per-window quantile streams
    are mergeable views of the same buckets.
    """
    return tuple(float(f"{m:g}") for e in range(-3, 4)
                 for m in (10.0 ** e, 2.5 * 10 ** e, 5 * 10.0 ** e))


# Backwards-compatible alias (pre-timeseries name).
_default_bounds = default_bounds


def bucket_quantile(bounds: Sequence[float], counts: Sequence[float],
                    q: float) -> float:
    """Quantile estimate from bucket counts (linear within buckets).

    ``counts`` has ``len(bounds) + 1`` entries (the last is overflow).
    Returns ``nan`` for an empty histogram; overflow-bucket ranks clamp
    to the largest finite bound (the estimator never invents a value
    beyond what the buckets can support).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = float(counts.sum())
    if total <= 0:
        return float("nan")
    rank = (q / 100.0) * total
    cum = np.cumsum(counts)
    idx = int(np.searchsorted(cum, rank, side="left"))
    if idx >= len(bounds):
        return float(bounds[-1])
    lo = 0.0 if idx == 0 else float(bounds[idx - 1])
    hi = float(bounds[idx])
    prev = 0.0 if idx == 0 else float(cum[idx - 1])
    in_bucket = float(counts[idx])
    if in_bucket <= 0:
        return hi
    frac = (rank - prev) / in_bucket
    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)


class LatencyHistogram:
    """Fixed-bucket histogram that also retains exact samples.

    Buckets give the cheap at-a-glance shape in text summaries; the
    retained samples give exact percentiles (simulation runs are
    bounded, so keeping them is affordable and keeps benchmark numbers
    identical to the pre-histogram code paths).

    ``max_samples`` bounds the retained-sample list for long-running
    rollups: past the cap, observations still land in the buckets (and
    in ``count``/``total``/``mean``) but the sample is not retained and
    :meth:`percentile` degrades to the bucket estimator.  The default
    (``None``) keeps the historical keep-everything behavior.
    """

    def __init__(self, name: str,
                 bounds: Optional[Sequence[float]] = None,
                 max_samples: Optional[int] = None):
        if max_samples is not None and max_samples < 0:
            raise ValueError("max_samples must be >= 0")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds if bounds is not None else default_bounds()))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.samples: List[float] = []
        self.max_samples = max_samples
        self.dropped_samples = 0
        self._n = 0
        self._sum = 0.0
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self._n += 1
        self._sum += value
        if value > self._max:
            self._max = value
        if (self.max_samples is None
                or len(self.samples) < self.max_samples):
            self.samples.append(value)
        else:
            self.dropped_samples += 1
        self.counts[int(np.searchsorted(self.bounds, value))] += 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (same bounds required).

        Bucket counts and scalar aggregates always merge exactly;
        retained samples carry over only up to ``max_samples``, so a
        rack/fleet rollup histogram stays bounded no matter how many
        per-node histograms fold in.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge {other.name} into {self.name}: "
                f"bucket bounds differ")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self._n += other._n
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        self.dropped_samples += other.dropped_samples
        room = (None if self.max_samples is None
                else self.max_samples - len(self.samples))
        if room is None:
            self.samples.extend(other.samples)
        else:
            take = max(0, min(room, len(other.samples)))
            self.samples.extend(other.samples[:take])
            self.dropped_samples += len(other.samples) - take
        return self

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def exact(self) -> bool:
        """True while every observation is retained as a sample."""
        return self.dropped_samples == 0

    def percentile(self, q: float) -> float:
        """Exact sample percentile while :attr:`exact`; bucket
        interpolation once samples have been dropped."""
        if self.exact:
            return percentile(self.samples, q)
        return bucket_quantile(self.bounds, self.counts, q)

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Non-empty ``(upper_bound, count)`` pairs; the final bound is
        ``inf`` (overflow)."""
        edges = list(self.bounds) + [float("inf")]
        return [(edge, n) for edge, n in zip(edges, self.counts) if n]

    def render(self) -> str:
        if not self.count:
            return f"{self.name}: (empty)"
        return (f"{self.name}: n={self.count} mean={self.mean:.4g} "
                f"p50={self.percentile(50):.4g} "
                f"p99={self.percentile(99):.4g} "
                f"max={self._max:.4g}")


class Metrics:
    """Get-or-create registry of named instruments."""

    enabled: bool = True

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None
                  ) -> LatencyHistogram:
        if name not in self.histograms:
            self.histograms[name] = LatencyHistogram(name, bounds)
        return self.histograms[name]

    def render(self) -> str:
        """Text summary table of every instrument, sorted by name."""
        lines: List[str] = []
        if self.counters:
            lines.append("counters:")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name].value
                text = f"{value:g}" if value != int(value) \
                    else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {text}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(n) for n in self.gauges)
            for name in sorted(self.gauges):
                lines.append(
                    f"  {name:<{width}}  {self.gauges[name].value:g}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                lines.append(f"  {self.histograms[name].render()}")
        return "\n".join(lines) if lines else "(no metrics recorded)"


class _NullCounter(Counter):
    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(LatencyHistogram):
    def observe(self, value: float) -> None:
        pass


class NullMetrics(Metrics):
    """No-op registry: every instrument lookup returns a shared
    write-ignoring instance."""

    enabled = False

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null", bounds=(1.0,))

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name, bounds=None) -> LatencyHistogram:
        return self._histogram


#: Shared no-op registry instance.
NULL_METRICS = NullMetrics()


def or_null_metrics(metrics: Optional[Metrics]) -> Metrics:
    """``metrics`` if given, else the shared :data:`NULL_METRICS`."""
    return metrics if metrics is not None else NULL_METRICS
