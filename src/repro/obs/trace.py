"""Simulated-time tracing: nested spans and instant events.

The repo's clocks are *simulated* — cycles inside the NPU timing model,
instruction ticks inside the functional executor, seconds inside the
serving layer — so a tracer here is not a wall-clock profiler: call
sites pass explicit simulated timestamps, and the exported data is
fully deterministic for a fixed seed (no ``time.time()`` anywhere).

Spans nest via an explicit begin/end stack (the instrumented code is
well-bracketed), carry free-form attributes, and land in a bounded
in-memory buffer; :class:`NullTracer` is the opt-out default so
untraced call sites pay only a no-op method call.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Dict, List, Optional


@dataclasses.dataclass
class Span:
    """One named interval of simulated time."""

    id: int
    name: str
    start: float
    #: Display/grouping row (Chrome-trace thread): "MVM", "client",
    #: a replica node name, ...
    track: str
    parent: Optional[int] = None
    end: Optional[float] = None
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclasses.dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (fault injected, breaker transition...)."""

    name: str
    time: float
    track: str
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)


class Tracer:
    """Collects spans and instant events against a simulated clock.

    Args:
        unit: Label for the timebase — ``"cycles"`` (NPU core),
            ``"instructions"`` (functional executor), or ``"s"``
            (serving layer). Exporters scale timestamps by unit.
        max_events: Buffer bound; spans/events beyond it are counted in
            :attr:`dropped` instead of stored. The first drop emits a
            one-time ``RuntimeWarning`` (silent data loss is how
            truncated traces get mistaken for short runs), and every
            drop increments ``obs.trace.dropped`` on ``metrics``.
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry
            that receives the ``obs.trace.dropped`` counter.
    """

    enabled: bool = True

    def __init__(self, unit: str = "cycles", max_events: int = 200_000,
                 metrics=None):
        from .metrics import or_null_metrics
        self.unit = unit
        self.max_events = max_events
        self.metrics = or_null_metrics(metrics)
        self.spans: List[Span] = []
        self.events: List[InstantEvent] = []
        self.dropped = 0
        self._drop_warned = False
        self._stack: List[Span] = []
        self._next_id = 0

    def _drop(self, what: str) -> None:
        """Account one dropped span/event — never silently."""
        self.dropped += 1
        self.metrics.counter("obs.trace.dropped").inc()
        if not self._drop_warned:
            self._drop_warned = True
            warnings.warn(
                f"Tracer buffer full ({self.max_events} events): "
                f"dropping {what}s from here on (total drops tracked "
                f"in Tracer.dropped / obs.trace.dropped)",
                RuntimeWarning, stacklevel=3)

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, start: float, track: Optional[str] = None,
              **attrs) -> Span:
        """Open a span at simulated time ``start`` and make it the
        parent of spans recorded until the matching :meth:`end`."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            id=self._next_id, name=name, start=start,
            track=track if track is not None
            else (parent.track if parent else "main"),
            parent=parent.id if parent else None, attrs=dict(attrs))
        self._next_id += 1
        if len(self.spans) + len(self.events) < self.max_events:
            self.spans.append(span)
        else:
            self._drop("span")
        self._stack.append(span)
        return span

    def end(self, span: Span, end: float, **attrs) -> None:
        """Close ``span`` at simulated time ``end``."""
        span.end = end
        if attrs:
            span.attrs.update(attrs)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def span(self, name: str, start: float, end: float,
             track: Optional[str] = None, **attrs) -> Span:
        """Record a complete span (child of the currently open span)."""
        sp = self.begin(name, start, track=track, **attrs)
        self.end(sp, end)
        return sp

    def instant(self, name: str, time: float,
                track: Optional[str] = None, **attrs) -> None:
        """Record a zero-duration event."""
        if len(self.spans) + len(self.events) >= self.max_events:
            self._drop("event")
            return
        default_track = self._stack[-1].track if self._stack else "main"
        self.events.append(InstantEvent(
            name=name, time=time,
            track=track if track is not None else default_track,
            attrs=dict(attrs)))

    # -- queries -----------------------------------------------------------

    def find(self, name: Optional[str] = None,
             track: Optional[str] = None) -> List[Span]:
        """Spans filtered by name and/or track, in recording order."""
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (track is None or s.track == track)]

    def find_events(self, name: Optional[str] = None,
                    track: Optional[str] = None) -> List[InstantEvent]:
        """Instant events filtered by name and/or track."""
        return [e for e in self.events
                if (name is None or e.name == name)
                and (track is None or e.track == track)]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent == span.id]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self.dropped = 0
        self._drop_warned = False


class NullTracer(Tracer):
    """No-op tracer: the default for every instrumented call site, so
    untraced runs pay one virtual call and no allocation per hook."""

    enabled = False
    _NULL_SPAN = Span(id=-1, name="null", start=0.0, track="null")

    def __init__(self):
        super().__init__(unit="null", max_events=0)

    def begin(self, name, start, track=None, **attrs) -> Span:
        return self._NULL_SPAN

    def end(self, span, end, **attrs) -> None:
        pass

    def span(self, name, start, end, track=None, **attrs) -> Span:
        return self._NULL_SPAN

    def instant(self, name, time, track=None, **attrs) -> None:
        pass


#: Shared no-op tracer instance.
NULL_TRACER = NullTracer()


def or_null(tracer: Optional[Tracer]) -> Tracer:
    """``tracer`` if given, else the shared :data:`NULL_TRACER`."""
    return tracer if tracer is not None else NULL_TRACER
