"""Trace/metrics exporters: Chrome trace-event JSON, JSONL, text.

``chrome://tracing`` and https://ui.perfetto.dev both load the Trace
Event Format (a JSON object with a ``traceEvents`` array), so a
scheduler run or a fault scenario becomes an interactive timeline with
no extra tooling. Timestamps in that format are microseconds; cycle-
and instruction-based tracers export 1 tick = 1 us (relative structure
is what matters), while second-based tracers are scaled by 1e6.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import Metrics
from .trace import InstantEvent, Span, Tracer

#: Microseconds per tracer time unit, by unit label.
_UNIT_SCALE = {"s": 1e6, "seconds": 1e6, "ms": 1e3, "us": 1.0}


def _scale_for(tracer: Tracer) -> float:
    return _UNIT_SCALE.get(tracer.unit, 1.0)


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def _safe_attrs(attrs: Dict[str, object]) -> Dict[str, object]:
    return {k: _json_safe(v) for k, v in attrs.items()}


def chrome_trace_events(tracer: Tracer, pid: int = 0,
                        time_scale: Optional[float] = None) -> List[dict]:
    """Flatten a tracer into Trace Event Format event dicts.

    Tracks become named threads of process ``pid``; spans become
    complete ("X") events, instants become instant ("i") events.
    """
    scale = time_scale if time_scale is not None else _scale_for(tracer)
    tids: Dict[str, int] = {}
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": f"repro [{tracer.unit}]"},
    }]

    def tid_of(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids)
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": tids[track], "args": {"name": track}})
        return tids[track]

    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        events.append({
            "name": span.name, "cat": "span", "ph": "X",
            "ts": span.start * scale,
            "dur": max(end - span.start, 0.0) * scale,
            "pid": pid, "tid": tid_of(span.track),
            "args": _safe_attrs(span.attrs)})
    for event in tracer.events:
        events.append({
            "name": event.name, "cat": "instant", "ph": "i", "s": "t",
            "ts": event.time * scale, "pid": pid,
            "tid": tid_of(event.track), "args": _safe_attrs(event.attrs)})
    return events


def to_chrome_trace(*tracers: Tracer) -> dict:
    """Combine tracers (one process each) into a loadable trace object."""
    events: List[dict] = []
    for pid, tracer in enumerate(tracers):
        events.extend(chrome_trace_events(tracer, pid=pid))
    dropped = sum(t.dropped for t in tracers)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "units": [t.unit for t in tracers],
            "dropped_events": dropped,
        },
    }


def write_chrome_trace(path: str, *tracers: Tracer) -> int:
    """Write a Chrome/Perfetto-loadable ``trace.json``; returns the
    number of trace events written."""
    trace = to_chrome_trace(*tracers)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return len(trace["traceEvents"])


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per span/instant, in recording order — the raw
    event dump for ad-hoc analysis (``jq``, pandas)."""
    lines = []
    for span in tracer.spans:
        lines.append(json.dumps({
            "kind": "span", "id": span.id, "name": span.name,
            "track": span.track, "parent": span.parent,
            "start": span.start, "end": span.end,
            "unit": tracer.unit, "attrs": _safe_attrs(span.attrs)}))
    for event in tracer.events:
        lines.append(json.dumps({
            "kind": "instant", "name": event.name, "track": event.track,
            "time": event.time, "unit": tracer.unit,
            "attrs": _safe_attrs(event.attrs)}))
    return "\n".join(lines)


def from_jsonl(text: str) -> Tracer:
    """Rebuild a :class:`Tracer` from :func:`to_jsonl` output.

    The inverse for round-trip testing and offline analysis: spans and
    instants come back with identical ids, names, tracks, parents,
    timestamps, and attrs (attrs that weren't JSON-native were already
    stringified on export, so equality holds after one round trip).
    """
    spans: List[Span] = []
    events: List[InstantEvent] = []
    unit = "cycles"
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("kind")
        unit = rec.get("unit", unit)
        if kind == "span":
            spans.append(Span(
                id=rec["id"], name=rec["name"], start=rec["start"],
                track=rec["track"], parent=rec["parent"],
                end=rec["end"], attrs=dict(rec["attrs"])))
        elif kind == "instant":
            events.append(InstantEvent(
                name=rec["name"], time=rec["time"],
                track=rec["track"], attrs=dict(rec["attrs"])))
        else:
            raise ValueError(
                f"line {lineno}: unknown record kind {kind!r}")
    tracer = Tracer(unit=unit)
    tracer.spans = spans
    tracer.events = events
    tracer._next_id = max((s.id for s in spans), default=-1) + 1
    return tracer


def summarize(tracer: Optional[Tracer] = None,
              metrics: Optional[Metrics] = None) -> str:
    """Human-readable roll-up: span totals by (track, name), instant
    counts, then the metrics table."""
    lines: List[str] = []
    if tracer is not None and (tracer.spans or tracer.events):
        totals: Dict[tuple, List[float]] = {}
        for span in tracer.spans:
            agg = totals.setdefault((span.track, span.name), [0, 0.0])
            agg[0] += 1
            agg[1] += span.duration
        lines.append(f"spans ({tracer.unit}):")
        width = max(len(f"{t}/{n}") for t, n in totals) if totals else 0
        for (track, name), (count, total) in sorted(totals.items()):
            label = f"{track}/{name}"
            lines.append(f"  {label:<{width}}  n={count:<6d} "
                         f"total={total:<12.4g} mean={total / count:.4g}")
        if tracer.events:
            counts: Dict[tuple, int] = {}
            for event in tracer.events:
                key = (event.track, event.name)
                counts[key] = counts.get(key, 0) + 1
            lines.append("instants:")
            for (track, name), count in sorted(counts.items()):
                lines.append(f"  {track}/{name}  n={count}")
        if tracer.dropped:
            lines.append(f"  ({tracer.dropped} events dropped: buffer "
                         f"bound {tracer.max_events})")
    if metrics is not None:
        text = metrics.render()
        if text != "(no metrics recorded)":
            lines.append(text)
    return "\n".join(lines) if lines else "(nothing recorded)"
