"""Analytic lower bounds on scheduled program time.

The event-driven scheduler can never beat the serial occupancy of any
single resource: the MVM issue pipeline, the MFU stream, the DRAM/network
transfer port, and the scalar dispatch stream each process their chains
in program order, so the schedule's makespan is at least the largest of
the per-resource busy sums. This is the UDM-style "unconstrained except
one resource" argument of the paper's Section III methodology applied to
the compound-ISA machine, and it gives the conformance fuzzer a
program-shape-independent timing invariant:

    ``TimingReport.total_cycles >= serial_lower_bound(...) (+ overhead)``
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import NpuConfig
from ..isa.memspace import ScalarReg
from ..isa.program import NpuProgram, SetScalar
from .latency import LatencyConstants, LatencyModel


def serial_lower_bound(program: NpuProgram, config: NpuConfig,
                       bindings: Optional[Dict[str, int]] = None,
                       constants: Optional[LatencyConstants] = None
                       ) -> float:
    """Largest per-resource serial occupancy of ``program`` in cycles.

    Walks the dynamic event stream with the same
    :class:`~repro.timing.latency.LatencyModel` the scheduler uses and
    sums, per resource, the cycles that resource is necessarily held:
    ``mv_mul`` issue occupancy on the MVM, point-wise issue occupancy on
    the MFU stream, matrix-chain cycles on the transfer port, and chain
    setup/dispatch on the scalar front end (counted up to the last
    chain, since trailing scalar writes need not delay completion). The
    returned bound excludes the per-invocation overhead constant;
    compare against a report produced with
    ``include_invocation_overhead=False``, or add
    ``constants.invocation_overhead``.
    """
    lat = LatencyModel(config, constants)
    consts = lat.constants
    rows = cols = 1
    mvm = mfu = transfer = 0.0
    dispatch = 0.0
    dispatch_at_last_chain = 0.0
    for event in program.events(bindings):
        if isinstance(event, SetScalar):
            if event.reg is ScalarReg.Rows:
                rows = event.value
            elif event.reg is ScalarReg.Columns:
                cols = event.value
            dispatch += consts.dispatch_interval
            continue
        n_instr = len(event) + 1  # + end_chain
        dispatch += max(consts.chain_setup_cycles,
                        n_instr * consts.dispatch_interval)
        dispatch_at_last_chain = dispatch
        if event.is_matrix_chain:
            transfer += lat.matrix_chain_cycles(
                rows * cols, config.weight_bits_per_element / 8)
        elif event.has_mv_mul:
            mvm += lat.chain_latency(event, rows, cols).issue
        else:
            mfu += lat.chain_latency(event, rows, cols).issue
    return max(mvm, mfu, transfer, dispatch_at_last_chain)
