"""Hierarchical decode and dispatch (HDD) tree model (Section V-C, Fig. 6).

The top-level scheduler expands each compound instruction into thousands
of primitive operations through a tree of schedulers and decoders: for
the BW_S10 instance, 6 top-level decoders plus 4 second-level schedulers
which dispatch to a further 41 decoders, whose control signals fan out to
hundreds of dot-product engines.

This model reconstructs the decoder tree from the configuration and
answers the two questions the paper uses it for: how many primitive
operations a single compound instruction dispatches (over 7 million for
the largest GRU's ``mv_mul``), and whether the scalar processor's
dispatch rate (one compound instruction per ~4 cycles) sustains the
compute pipeline.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

from ..config import NpuConfig


@dataclasses.dataclass
class DecoderNode:
    """One scheduler or decoder in the HDD tree."""

    name: str
    kind: str  # "scheduler" or "decoder"
    children: List["DecoderNode"] = dataclasses.field(default_factory=list)
    #: Data-plane fanout of a leaf decoder (control signals driven).
    fanout: int = 0

    def walk(self) -> Iterator["DecoderNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclasses.dataclass
class HddTree:
    """The full decode/dispatch hierarchy for one configuration."""

    config: NpuConfig
    root: DecoderNode

    @property
    def second_level_schedulers(self) -> List[DecoderNode]:
        return [n for n in self.root.children if n.kind == "scheduler"]

    @property
    def top_level_decoders(self) -> List[DecoderNode]:
        return [n for n in self.root.children if n.kind == "decoder"]

    @property
    def third_level_decoders(self) -> List[DecoderNode]:
        out: List[DecoderNode] = []
        for sched in self.second_level_schedulers:
            out.extend(n for n in sched.walk()
                       if n is not sched and n.kind == "decoder")
        return out

    @property
    def total_nodes(self) -> int:
        return sum(1 for _ in self.root.walk())

    @property
    def data_plane_fanout(self) -> int:
        """Total control signals driven into the data plane."""
        return sum(n.fanout for n in self.root.walk())

    def mv_mul_primitive_ops(self, rows: int, cols: int) -> int:
        """Primitive MAC operations dispatched by one ``mv_mul`` with the
        mega-SIMD registers set to (rows, cols)."""
        n = self.config.native_dim
        return rows * cols * n * n

    def dispatch_sustains(self, issue_cycles_per_chain: float,
                          instructions_per_chain: float) -> bool:
        """Whether scalar dispatch keeps the pipeline fed: the chain's
        issue occupancy must cover its own dispatch time."""
        from .latency import LatencyConstants
        dispatch = instructions_per_chain * LatencyConstants().dispatch_interval
        return issue_cycles_per_chain >= dispatch

    def annotate(self, metrics, rows: int = 1, cols: int = 1) -> None:
        """Publish the tree's structural facts into a
        :class:`~repro.obs.Metrics` registry: node counts, data-plane
        fanout, and the primitive-op expansion of one ``mv_mul`` at the
        given mega-SIMD setting (Section V-C's "one compound
        instruction dispatches millions of primitive ops")."""
        metrics.gauge("hdd.total_nodes").set(self.total_nodes)
        metrics.gauge("hdd.top_level_decoders").set(
            len(self.top_level_decoders))
        metrics.gauge("hdd.second_level_schedulers").set(
            len(self.second_level_schedulers))
        metrics.gauge("hdd.third_level_decoders").set(
            len(self.third_level_decoders))
        metrics.gauge("hdd.data_plane_fanout").set(self.data_plane_fanout)
        metrics.counter("hdd.mv_mul_primitive_ops").inc(
            self.mv_mul_primitive_ops(rows, cols))


def build_hdd_tree(config: NpuConfig) -> HddTree:
    """Construct the decoder hierarchy for ``config``.

    The shape follows Fig. 6: the MVM has a second-level scheduler that
    expands operations over matrix rows and columns onto per-tile-engine
    decoder groups (tile-engine dispatcher, MRF bank, input feed,
    accumulation unit, output queue) plus one monolithic add-reduction
    decoder; each MFU has a scheduler over its function-unit and operand
    register-file decoders; network/DRAM movement has its own scheduler.
    For BW_S10 (6 tile engines, 2 MFUs) this yields 6 top-level decoders,
    4 second-level schedulers, and 41 third-level decoders — the counts
    reported in Section V-C.
    """
    root = DecoderNode("top-level scheduler", "scheduler")

    # Direct top-level decoders for globally-shared structures.
    for name in ("InitialVrf", "scalar control", "chain sequencer",
                 "NetQ ingress", "NetQ egress", "DRAM port"):
        root.children.append(DecoderNode(name, "decoder", fanout=1))

    # MVM second-level scheduler: expands along matrix rows and columns.
    mvm = DecoderNode("MVM scheduler", "scheduler")
    for e in range(config.tile_engines):
        group = [
            DecoderNode(f"tile engine {e} dispatcher", "decoder",
                        fanout=config.dot_product_engines),
            DecoderNode(f"tile engine {e} MRF bank", "decoder",
                        fanout=config.dot_product_engines * config.lanes),
            DecoderNode(f"tile engine {e} input feed", "decoder",
                        fanout=config.lanes),
            DecoderNode(f"tile engine {e} accumulator", "decoder",
                        fanout=config.dot_product_engines),
            DecoderNode(f"tile engine {e} output queue", "decoder",
                        fanout=1),
        ]
        mvm.children.extend(group)
    mvm.children.append(DecoderNode("add-reduction unit", "decoder",
                                    fanout=config.native_dim))
    root.children.append(mvm)

    # One scheduler per MFU over its function units and operand VRFs.
    for m in range(config.mfus):
        mfu = DecoderNode(f"MFU {m} scheduler", "scheduler")
        mfu.children.extend([
            DecoderNode(f"MFU {m} add/sub unit", "decoder",
                        fanout=config.lanes),
            DecoderNode(f"MFU {m} multiply unit", "decoder",
                        fanout=config.lanes),
            DecoderNode(f"MFU {m} activation unit", "decoder",
                        fanout=config.lanes),
            DecoderNode(f"MFU {m} AddSubVrf", "decoder", fanout=1),
            DecoderNode(f"MFU {m} MultiplyVrf", "decoder", fanout=1),
        ])
        root.children.append(mfu)

    # Data-movement scheduler (vector arbitration network); it drives the
    # switch fabric directly rather than through child decoders.
    move = DecoderNode("vector arbitration scheduler", "scheduler",
                       fanout=config.mfus + 3)
    root.children.append(move)

    return HddTree(config=config, root=root)
