"""Event-driven cycle-level timing simulator.

Schedules a program's dynamic chain stream over the microarchitecture's
resources and dependences:

* **Chain setup** — the single-threaded top-level scheduler processes
  chains strictly in program order, spending ``chain_setup_cycles`` per
  chain on decode, hazard check, and crossbar/arbitration configuration.
  Buffering at each HDD stage (Section V-C) lets the setup stream run
  ahead of execution, so it bounds chain throughput without serializing
  against compute; it produces the dimension-independent per-step
  latency floor the paper measures on small and medium RNNs
  (Section VII-B2). When a chain is replayed from a loop body, a
  configuration-caching scheduler (the CNN-variant's behaviour, enabled
  with ``replay_loops=True``) pays only the dispatch cost on repeats.
* **MVM occupancy** — an ``mv_mul`` holds the MVM for
  ``ceil(R*C/tiles) * N/lanes`` cycles; back-to-back matrix chains in
  large models make this the binding resource (GRU h=2816: 6 x 110 = 660
  cycles/step vs. the measured 662).
* **MFU stream occupancy** — chains without an ``mv_mul`` occupy the
  point-wise pipeline for ``rows * N/lanes`` cycles.
* **Streaming dependences** — the vector arbitration network forwards
  produced entries toward consumers as both streams advance, so a
  dependent chain trails its producer's start by a short forwarding
  delay (``forward_delay``) rather than the producer's full pipeline
  depth (entry-granular readiness tracking).
* **Scalar dispatch** — the control processor feeds roughly one compound
  instruction per ``dispatch_interval`` cycles (Section V-C).
* **DRAM/network transfers** — matrix chains occupy a separate transfer
  resource, so weight streaming overlaps compute (the CNN regime); an
  ``mv_mul`` whose MRF tiles are still in flight waits for them.

Anti-dependences (WAR) are subsumed by in-order issue with turnaround
spacing, matching the in-order vector arbitration network.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..config import NpuConfig
from ..errors import ExecutionError
from ..isa.chain import InstructionChain
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import Opcode
from ..isa.program import NpuProgram, SetScalar
from ..obs import Metrics, Tracer, or_null, or_null_metrics
from .latency import LatencyConstants, LatencyModel
from .report import ChainRecord, TimingReport


class ReadyTracker:
    """Entry-granular readiness times, vectorized per memory space.

    Replaces the per-element ``(MemId, index) -> time`` dict the
    scheduler previously probed once per register-file entry per chain
    (O(rows·cols) dict hashes even when no producer had ever written the
    range). Each memory keeps one contiguous float64 array of forwarded-
    readiness times, where 0.0 means "never produced this run" — every
    recorded time is positive (a chain cannot start before its setup
    cycles), and ``max(start, 0.0) == start``, so the encoding is exact.

    :meth:`range_max` is the hot read: a single empty-check plus one
    vectorized slice max over the contiguous entry run.
    """

    def __init__(self) -> None:
        self._times: Dict[MemId, np.ndarray] = {}

    def range_max(self, mem: MemId, index: int, count: int) -> float:
        """Latest readiness time over entries [index, index+count)."""
        times = self._times.get(mem)
        if times is None:
            return 0.0
        lo = max(index, 0)
        hi = min(index + count, times.shape[0])
        if lo >= hi:
            return 0.0
        return float(times[lo:hi].max())

    def mark(self, mem: MemId, index: int, count: int,
             time: float) -> None:
        """Record entries [index, index+count) as ready at ``time``."""
        times = self._times.get(mem)
        end = index + count
        if times is None:
            times = np.zeros(max(end, 64), dtype=np.float64)
            self._times[mem] = times
        elif end > times.shape[0]:
            grown = np.zeros(max(end, 2 * times.shape[0]),
                             dtype=np.float64)
            grown[:times.shape[0]] = times
            times = grown
            self._times[mem] = times
        times[index:end] = time


@dataclasses.dataclass
class _MachineState:
    """Mutable scheduling state for one run."""

    rows: int = 1
    cols: int = 1
    dispatch_time: float = 0.0
    mvm_free: float = 0.0
    mfu_free: float = 0.0
    transfer_free: float = 0.0
    last_completion: float = 0.0
    mvm_busy: float = 0.0
    chains: int = 0
    instructions: int = 0
    ready: ReadyTracker = dataclasses.field(default_factory=ReadyTracker)
    seen_chains: set = dataclasses.field(default_factory=set)


class TimingSimulator:
    """Cycle-level performance model of a BW NPU instance."""

    def __init__(self, config: NpuConfig,
                 constants: Optional[LatencyConstants] = None,
                 record_chains: bool = False,
                 replay_loops: bool = False,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[Metrics] = None):
        """
        Args:
            config: The NPU instance to model.
            constants: Calibrated pipeline constants (defaults frozen
                against Table V).
            record_chains: Keep a per-chain schedule trace in the report.
            replay_loops: Model a configuration-caching scheduler: a
                chain already seen (e.g. on later loop iterations) pays
                only instruction dispatch, not full setup. This is the
                CNN-specialized variant's behaviour (the per-pixel inner
                loop would otherwise be setup-bound) and the basis of the
                batch-interleaving future-work ablation.
            tracer: Optional :class:`~repro.obs.Tracer` (cycle
                timebase) receiving one span per scheduled chain — with
                ``issue``/``drain`` child spans on the MVM/MFU/transfer
                tracks — plus a root ``run`` span. Tracing never changes
                the schedule: the same cycle counts come out either way.
            metrics: Optional :class:`~repro.obs.Metrics` registry:
                MVM/MFU busy cycles, dispatch-stall and data-stall
                cycles, chain and instruction totals.
        """
        self.config = config
        self.latency = LatencyModel(config, constants)
        self.record_chains = record_chains
        self.replay_loops = replay_loops
        self.tracer = or_null(tracer)
        self.metrics = or_null_metrics(metrics)

    def run(self, program: NpuProgram,
            bindings: Optional[Dict[str, int]] = None,
            nominal_ops: float = 0.0,
            include_invocation_overhead: bool = True) -> TimingReport:
        """Simulate ``program`` and return a :class:`TimingReport`.

        Args:
            program: The NPU program to time.
            bindings: Run-time loop-count bindings.
            nominal_ops: Useful model-level operation count, used for
                effective TFLOPS / utilization (the paper reports model
                ops over wall-clock, excluding padding waste).
            include_invocation_overhead: Charge the per-invocation launch
                and network I/O overhead constant.
        """
        state = _MachineState()
        records: Optional[List[ChainRecord]] = \
            [] if self.record_chains else None

        run_span = self.tracer.begin("run", 0.0, track="scheduler",
                                     config=self.config.name)
        for event in program.events(bindings):
            if isinstance(event, SetScalar):
                if event.reg is ScalarReg.Rows:
                    state.rows = event.value
                elif event.reg is ScalarReg.Columns:
                    state.cols = event.value
                state.dispatch_time += \
                    self.latency.constants.dispatch_interval
                state.instructions += 1
                continue
            if event.is_matrix_chain:
                self._matrix_chain(event, state)
            else:
                self._vector_chain(event, state, records)

        total = state.last_completion
        if include_invocation_overhead:
            total += self.latency.constants.invocation_overhead
        self.tracer.end(run_span, total, chains=state.chains,
                        instructions=state.instructions)
        m = self.metrics
        m.counter("timing.chains").inc(state.chains)
        m.counter("timing.instructions").inc(state.instructions)
        m.counter("timing.cycles").inc(total)
        m.counter("timing.mvm_busy_cycles").inc(state.mvm_busy)
        return TimingReport(
            config=self.config, total_cycles=total,
            nominal_ops=nominal_ops, mvm_busy_cycles=state.mvm_busy,
            chains_executed=state.chains,
            instructions_dispatched=state.instructions,
            records=records,
        )

    # -- vector chains ------------------------------------------------------

    def _vector_chain(self, chain: InstructionChain, state: _MachineState,
                      records: Optional[List[ChainRecord]]) -> None:
        consts = self.latency.constants
        rows, cols = state.rows, state.cols
        lat = self.latency.chain_latency(chain, rows, cols)
        width_in = cols if chain.has_mv_mul else rows

        # Setup/dispatch stream: full setup for a newly decoded chain,
        # dispatch-only for replayed (configuration-cached) chains.
        n_instr = len(chain) + 1  # + end_chain
        if self.replay_loops and id(chain) in state.seen_chains:
            setup = n_instr * consts.dispatch_interval
        else:
            setup = max(consts.chain_setup_cycles,
                        n_instr * consts.dispatch_interval)
            state.seen_chains.add(id(chain))
        state.dispatch_time += setup

        resource_free = state.mvm_free if chain.has_mv_mul \
            else state.mfu_free
        start = max(state.dispatch_time, resource_free)

        # Head read: the chain streams its input from time `start`; the
        # producer's first output must already be in the register file.
        head = chain.source
        if head.mem_id is not None and head.index is not None:
            start = max(start, state.ready.range_max(
                head.mem_id, head.index, width_in))

        # MRF tiles must have landed (weight streaming from DRAM).
        if chain.has_mv_mul:
            start = max(start, state.ready.range_max(
                MemId.MatrixRf, chain.mv_mul_index, rows * cols))

        # Point-wise operands are read deeper in the consumer's pipeline;
        # the same forwarded-readiness times gate them.
        for instr in chain.pointwise_ops:
            if instr.index is None:
                continue  # unary activation: no register-file operand
            mem = (MemId.MultiplyVrf if instr.opcode is Opcode.VV_MUL
                   else MemId.AddSubVrf)
            start = max(start, state.ready.range_max(mem, instr.index, rows))

        completion = start + lat.completion
        # Consumers may trail this chain by the forwarding delay (see
        # LatencyConstants.forward_delay); completion still reflects the
        # full pipeline traversal for fill/drain accounting.
        forwarded = start + consts.forward_delay
        for write in chain.writes:
            if write.mem_id is None or write.index is None:
                continue
            state.ready.mark(write.mem_id, write.index, rows, forwarded)

        if chain.has_mv_mul:
            state.mvm_free = start + lat.issue
            state.mvm_busy += lat.issue
        else:
            state.mfu_free = start + lat.issue
        state.instructions += n_instr
        state.last_completion = max(state.last_completion, completion)
        if records is not None:
            records.append(ChainRecord(
                index=state.chains, start=start, issue=lat.issue,
                depth_first=lat.depth_first, completion=completion,
                has_mv_mul=chain.has_mv_mul, rows=rows, cols=cols))
        tracer, m = self.tracer, self.metrics
        if tracer.enabled or m.enabled:
            track = "MVM" if chain.has_mv_mul else "MFU"
            # Stall attribution: the resource sat idle for the dispatch
            # stream (setup-bound, the small-RNN floor) and then for
            # operand/tile readiness (data-bound).
            dispatch_stall = max(0.0, state.dispatch_time - resource_free)
            data_stall = start - max(state.dispatch_time, resource_free)
            span = tracer.begin(
                "chain", start, track=track, index=state.chains,
                mv_mul=chain.has_mv_mul, issue=lat.issue,
                depth_first=lat.depth_first, rows=rows, cols=cols,
                instructions=n_instr, dispatch_stall=dispatch_stall,
                data_stall=data_stall)
            tracer.span("issue", start, start + lat.issue)
            tracer.span("drain", start + lat.issue, completion)
            tracer.end(span, completion)
            m.counter("timing.%s_issue_cycles" % track.lower()) \
                .inc(lat.issue)
            m.counter("timing.dispatch_stall_cycles").inc(dispatch_stall)
            m.counter("timing.data_stall_cycles").inc(data_stall)
        state.chains += 1

    # -- matrix chains -------------------------------------------------------

    def _matrix_chain(self, chain: InstructionChain,
                      state: _MachineState) -> None:
        tiles = state.rows * state.cols
        cycles = self.latency.matrix_chain_cycles(
            tiles, self.config.weight_bits_per_element / 8)
        n_instr = len(chain) + 1
        if self.replay_loops and id(chain) in state.seen_chains:
            state.dispatch_time += \
                n_instr * self.latency.constants.dispatch_interval
        else:
            state.dispatch_time += max(
                self.latency.constants.chain_setup_cycles,
                n_instr * self.latency.constants.dispatch_interval)
            state.seen_chains.add(id(chain))
        start = max(state.dispatch_time, state.transfer_free)
        rd, wr = chain.instructions
        if rd.mem_id is MemId.Dram and rd.index is not None:
            # Source tiles written earlier (e.g. spilled) gate the read.
            start = max(start, state.ready.range_max(
                MemId.Dram, rd.index, tiles))
        completion = start + cycles
        if wr.index is not None:
            target = MemId.MatrixRf if wr.mem_id is MemId.MatrixRf \
                else MemId.Dram
            state.ready.mark(target, wr.index, tiles, completion)
        state.transfer_free = completion
        self.tracer.span("transfer", start, completion, track="transfer",
                         index=state.chains, tiles=tiles,
                         dest=wr.mem_id.name)
        self.metrics.counter("timing.transfer_cycles").inc(cycles)
        state.instructions += n_instr
        state.chains += 1
        state.last_completion = max(state.last_completion, completion)


def steady_state_cycles_per_step(
        config: NpuConfig, program_factory, steps_a: int = 20,
        steps_b: int = 60, binding: str = "steps",
        constants: Optional[LatencyConstants] = None) -> float:
    """Measure steady-state cycles per RNN timestep.

    Runs the same program at two step counts and differences the totals,
    cancelling pipeline fill and invocation overhead.

    Args:
        config: NPU configuration.
        program_factory: Callable returning the program (or a
            :class:`~repro.compiler.lowering.CompiledModel`).
        steps_a, steps_b: The two step counts (b > a).
    """
    if steps_b <= steps_a:
        raise ExecutionError("steps_b must exceed steps_a")
    program = program_factory()
    if hasattr(program, "program"):  # accept CompiledModel
        program = program.program
    sim = TimingSimulator(config, constants=constants)
    total_a = sim.run(program, bindings={binding: steps_a}).total_cycles
    total_b = sim.run(program, bindings={binding: steps_b}).total_cycles
    return (total_b - total_a) / (steps_b - steps_a)
