"""Pipeline latency model of the BW NPU microarchitecture.

Derives per-chain timing from the configuration's structural parameters
(native dimension, lanes, tile engines, MFUs) plus a small set of
calibrated pipeline-depth constants.

Structural terms (exact functions of the configuration):

* **MVM issue occupancy** — ``ceil(R*C / tile_engines) * (N / lanes)``
  cycles per ``mv_mul``: each dot-product engine consumes a native row in
  ``N/lanes`` cycles and the ``R*C`` native tiles round-robin over the
  tile engines. For GRU h=2816 on BW_S10 this gives 6 x 110 = 660
  cycles/step, matching the measured 662 (Table V).
* **Accumulation depth** — ``log2(lanes)`` for the in-lane adder tree,
  ``log2(N/lanes)`` for the row accumulator, ``log2(C)`` for the
  inter-column reduction.

Calibrated constants (:class:`LatencyConstants`): fixed pipeline fill of
the MVM, per-function-unit depth, MFU crossbar transit, vector
arbitration network hop, write-back depth, and per-invocation overhead.
They are least-squares fitted against the eleven measured per-step cycle
counts of Table V and then frozen (see DESIGN.md Section 5); the fit is
reproduced by ``benchmarks/test_table5_deepbench_rnn.py``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

from ..config import NpuConfig
from ..isa.chain import InstructionChain


@dataclasses.dataclass(frozen=True)
class LatencyConstants:
    """Calibrated pipeline-depth constants (cycles).

    Defaults were fitted against the Table V per-step latencies of the
    BW_S10 instance (see module docstring); they are structural depths,
    not model-dependent fudge factors, so the same values apply across
    configurations.
    """

    #: Vector arbitration network hop: register-file read + route-in.
    arb_depth: float = 12.0
    #: Fixed MVM pipeline fill beyond the structural tree depths
    #: (operand registering, BFP alignment, output format conversion).
    mvm_fixed: float = 40.0
    #: Depth of one point-wise function unit pass.
    fu_depth: float = 8.0
    #: MFU input/output crossbar transit per MFU traversed.
    mfu_transit: float = 8.0
    #: Write-back: route-out + register-file write.
    wb_depth: float = 24.0
    #: Producer-to-consumer forwarding delay (cycles): the vector
    #: arbitration network routes produced entries toward consumers as
    #: both streams advance, so a dependent chain trails its producer's
    #: *start* by this delay rather than by the full pipeline depth —
    #: the paper's "dataflow manner so vectors can flow directly from one
    #: functional unit to another to minimize pipeline bubbles" (§I).
    forward_delay: float = 30.0
    #: Scalar processor dispatch interval: one compound instruction
    #: enters the top-level scheduler every 4 cycles (Section V-C).
    dispatch_interval: float = 4.0
    #: Per-chain setup at the top-level scheduler: decode, hazard
    #: interlock, and configuration of the MFU crossbars and the vector
    #: arbitration network. Buffering at each HDD stage lets this stream
    #: run ahead of execution, so it bounds throughput (chains per
    #: second) rather than serializing with compute; it is the dominant
    #: term of the dimension-independent per-step latency floor the
    #: paper reports for small/medium RNNs (Section VII-B2).
    chain_setup_cycles: float = 72.0
    #: Per-invocation overhead: program launch plus network queue
    #: entry/exit (calibrated on the GRU h=512 t=1 row of Table V).
    invocation_overhead: float = 2450.0


@dataclasses.dataclass(frozen=True)
class ChainLatency:
    """Latency decomposition of one chain execution."""

    #: Cycles the chain occupies the issue pipeline (MVM or MFU stream).
    issue: float
    #: Cycles from chain start until its first output element is written.
    depth_first: float
    #: Pipeline offset (from chain start) at which each point-wise
    #: operand register file is read, in chain order.
    operand_offsets: Tuple[float, ...]

    @property
    def completion(self) -> float:
        """Cycles from start until the last output element is written."""
        return self.depth_first + self.issue


class LatencyModel:
    """Computes per-chain latencies for a configuration."""

    def __init__(self, config: NpuConfig,
                 constants: Optional[LatencyConstants] = None):
        self.config = config
        self.constants = constants if constants is not None \
            else LatencyConstants()

    def mvm_issue_cycles(self, rows: int, cols: int) -> float:
        """MVM occupancy of an ``mv_mul`` over an R x C tile grid."""
        tiles = rows * cols
        passes = math.ceil(tiles / self.config.tile_engines)
        return passes * self.config.cycles_per_native_row

    def pointwise_issue_cycles(self, rows: int) -> float:
        """Issue occupancy of a chain without an ``mv_mul``."""
        return rows * self.config.cycles_per_native_row

    def accumulation_depth(self, cols: int) -> float:
        """Structural depth of the MVM reduction network."""
        lanes = self.config.lanes
        per_row = self.config.cycles_per_native_row
        return (math.ceil(math.log2(max(lanes, 2)))
                + math.ceil(math.log2(max(per_row, 2)))
                + math.ceil(math.log2(max(cols, 2))))

    def chain_latency(self, chain: InstructionChain,
                      rows: int, cols: int) -> ChainLatency:
        """Latency decomposition for one vector chain execution."""
        c = self.constants
        depth = c.arb_depth
        if chain.has_mv_mul:
            issue = self.mvm_issue_cycles(rows, cols)
            # Pipe depth through the reduction network. The C-native-block
            # input streaming time is issue occupancy, not handoff depth:
            # a consumer's input stream overlaps with its producer's
            # output stream (both move at lanes elements/cycle), which is
            # why the paper measures an essentially dimension-independent
            # per-step latency floor (Section VII-B2).
            depth += self.accumulation_depth(cols)
            depth += c.mvm_fixed
        else:
            issue = self.pointwise_issue_cycles(rows)

        offsets: List[float] = []
        slots = chain.assign_function_units(self.config.mfus)
        last_mfu = -1
        for slot in slots:
            if slot.mfu_index != last_mfu:
                depth += c.mfu_transit
                last_mfu = slot.mfu_index
            offsets.append(depth)
            depth += c.fu_depth
        depth += c.wb_depth
        return ChainLatency(issue=issue, depth_first=depth,
                            operand_offsets=tuple(offsets))

    def matrix_chain_cycles(self, tiles: int,
                            bytes_per_element: float) -> float:
        """Cycles for an ``m_rd``/``m_wr`` chain moving ``tiles`` native
        tiles through the DRAM/network interface."""
        n = self.config.native_dim
        nbytes = tiles * n * n * bytes_per_element
        # Model the DRAM/network port at 64 bytes per cycle.
        return nbytes / 64.0

    def dispatch_cycles(self, instruction_count: int) -> float:
        """Scalar-core dispatch time for ``instruction_count``
        instructions."""
        return instruction_count * self.constants.dispatch_interval
