"""Timing reports: cycles, latency, effective TFLOPS, utilization."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..config import NpuConfig


@dataclasses.dataclass(frozen=True)
class ChainRecord:
    """Timing of one dynamic chain execution."""

    index: int
    start: float
    issue: float
    depth_first: float
    completion: float
    has_mv_mul: bool
    rows: int
    cols: int

    @property
    def first_output(self) -> float:
        return self.start + self.depth_first


@dataclasses.dataclass
class TimingReport:
    """Result of a timing simulation run."""

    config: NpuConfig
    total_cycles: float
    #: Useful (unpadded, model-level) operations executed.
    nominal_ops: float
    #: Cycles the MVM issue pipeline was occupied.
    mvm_busy_cycles: float
    chains_executed: int
    instructions_dispatched: int
    records: Optional[List[ChainRecord]] = None

    @property
    def latency_s(self) -> float:
        return self.total_cycles * self.config.cycle_time_s

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def effective_tflops(self) -> float:
        """Model operations per second of wall-clock latency / 1e12."""
        if self.latency_s == 0:
            return 0.0
        return self.nominal_ops / self.latency_s / 1e12

    @property
    def utilization(self) -> float:
        """Fraction of peak FLOPS achieved (the paper's "% Utilization")."""
        peak = self.config.peak_tflops
        return self.effective_tflops / peak if peak > 0 else 0.0

    @property
    def mvm_occupancy(self) -> float:
        """Fraction of cycles the MVM issue pipeline was busy."""
        if self.total_cycles == 0:
            return 0.0
        return self.mvm_busy_cycles / self.total_cycles

    def summary(self) -> str:
        return (f"{self.config.name}: {self.total_cycles:.0f} cycles "
                f"({self.latency_ms:.4f} ms), "
                f"{self.effective_tflops:.2f} TFLOPS effective, "
                f"{100 * self.utilization:.1f}% utilization")
