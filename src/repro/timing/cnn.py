"""CNN timing: the CNN-specialized BW NPU variant (Sections IV-B, VII-C).

Convolutions are linearized onto matrix-vector multiplication; the
CNN-specialized variant (BW_CNN_A10, Table VI) additionally relies on
DRAM weight streaming overlapped with compute (Section V-A) and on a
scheduler that replays the per-pixel inner loop without paying full
chain-setup each iteration.

Two per-layer cost models are provided, and the toolflow takes the
better of the two (it is free to pick the mapping):

* **Block-packed mapping** (structural): when the kernel count K is
  smaller than the native dimension, ``floor(N/K)`` output pixels pack
  block-diagonally into one tile row space, and each tile engine
  processes an independent pixel group. For the 28x28x128/3x3 layer of
  Table I on BW_S10 this yields 1,320 cycles against the paper's
  measured 1,326.
* **Variant efficiency bound** (calibrated): the specialized variant
  tracks the SDM latency within a fitted factor (Table I's two CNN rows
  measure 1.09x and 1.18x SDM; we use 1.12x).

ResNet-50 end-to-end timing sums per-layer compute/stream maxima
(weights for layer ``l+1`` stream while layer ``l`` computes) plus PCIe
and invocation overheads — the Table VI serving path.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from ..config import NpuConfig
from ..models.cnn import ConvSpec
from ..models.resnet import NetworkLayer, resnet50_featurizer
from .latency import LatencyConstants

#: Fitted SDM-tracking factor of the CNN-specialized variant.
CNN_VARIANT_SDM_FACTOR = 1.12


def block_packed_conv_cycles(spec: ConvSpec, config: NpuConfig) -> float:
    """Structural block-packed mapping cost of one conv layer.

    ``r_pack = floor(N / K)`` pixels stack block-diagonally along a
    tile's rows (1 if K > N); each of the ``tile_engines`` engines
    serves an independent pixel group, walking the patch's
    ``ceil(patch/N)`` column tiles in ``N/lanes`` cycles each.
    """
    n = config.native_dim
    k, patch = spec.as_matrix_shape()
    r_pack = max(1, n // k)
    tile_rows = math.ceil(k / n)
    col_tiles = math.ceil(patch / n)
    pixels_per_pass = r_pack * max(1, config.tile_engines // tile_rows)
    cycles_per_pass = (tile_rows * col_tiles
                       * config.cycles_per_native_row)
    passes = math.ceil(spec.output_pixels / pixels_per_pass)
    return passes * cycles_per_pass


def variant_bound_cycles(spec: ConvSpec, config: NpuConfig,
                         sdm_factor: float = CNN_VARIANT_SDM_FACTOR
                         ) -> float:
    """Calibrated CNN-variant bound: SDM latency times the fitted
    tracking factor."""
    from ..criticalpath.analytic import conv_udm_cycles
    macs = spec.matmul_ops // 2
    sdm = macs / config.total_macs + conv_udm_cycles(spec.patch_length)
    return sdm * sdm_factor


def conv_layer_compute_cycles(spec: ConvSpec, config: NpuConfig) -> float:
    """Compute cycles of one conv layer: the better of the two mappings,
    plus one chain setup (the replayed inner loop pays setup once)."""
    constants = LatencyConstants()
    return (min(block_packed_conv_cycles(spec, config),
                variant_bound_cycles(spec, config))
            + constants.chain_setup_cycles)


def conv_layer_stream_cycles(spec: ConvSpec, config: NpuConfig,
                             dram_gbps: float) -> float:
    """Cycles to stream the layer's weights from DRAM."""
    weight_bytes = (spec.parameter_count
                    * config.weight_bits_per_element / 8)
    bytes_per_cycle = dram_gbps * 1e9 * config.cycle_time_s
    return weight_bytes / bytes_per_cycle


@dataclasses.dataclass(frozen=True)
class CnnLayerTiming:
    """Per-layer timing decomposition."""

    name: str
    spec: ConvSpec
    compute_cycles: float
    stream_cycles: float

    @property
    def cycles(self) -> float:
        """Streaming overlaps compute (double-buffered MRF halves)."""
        return max(self.compute_cycles, self.stream_cycles)

    @property
    def stream_bound(self) -> bool:
        return self.stream_cycles > self.compute_cycles


@dataclasses.dataclass
class CnnNetworkTiming:
    """End-to-end CNN serving estimate (Table VI)."""

    config: NpuConfig
    layers: List[CnnLayerTiming]
    pcie_overhead_s: float
    total_ops: float

    @property
    def compute_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def latency_s(self) -> float:
        constants = LatencyConstants()
        cycles = (self.compute_cycles + constants.invocation_overhead)
        return cycles * self.config.cycle_time_s + self.pcie_overhead_s

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    @property
    def ips(self) -> float:
        """Inferences per second at batch 1 (one request at a time)."""
        return 1.0 / self.latency_s

    @property
    def effective_tflops(self) -> float:
        return self.total_ops / self.latency_s / 1e12

    @property
    def stream_bound_layers(self) -> int:
        return sum(1 for layer in self.layers if layer.stream_bound)


def network_timing(config: NpuConfig,
                   layers: Optional[Sequence[NetworkLayer]] = None,
                   dram_gbps: float = 14.0,
                   pcie_overhead_s: float = 180e-6) -> CnnNetworkTiming:
    """Time a full CNN (default: the ResNet-50 featurizer) on a
    CNN-specialized instance.

    Args:
        config: The NPU instance (e.g. ``BW_CNN_A10``).
        layers: Convolution layer inventory; defaults to ResNet-50.
        dram_gbps: Local DRAM bandwidth for weight streaming (one DDR4
            channel on the Arria 10 board).
        pcie_overhead_s: Host-accelerator transfer time included in the
            paper's measurements ("the transfer time over PCI express").
    """
    if layers is None:
        layers = resnet50_featurizer()
    timed = [
        CnnLayerTiming(
            name=layer.name, spec=layer.spec,
            compute_cycles=(conv_layer_compute_cycles(layer.spec, config)
                            * layer.count),
            stream_cycles=(conv_layer_stream_cycles(layer.spec, config,
                                                    dram_gbps)
                           * layer.count))
        for layer in layers
    ]
    total_ops = float(sum(layer.total_ops for layer in layers))
    return CnnNetworkTiming(config=config, layers=timed,
                            pcie_overhead_s=pcie_overhead_s,
                            total_ops=total_ops)
