"""Cycle-level timing model of the BW NPU microarchitecture."""

from .bounds import serial_lower_bound
from .latency import ChainLatency, LatencyConstants, LatencyModel
from .report import ChainRecord, TimingReport
from .scheduler import TimingSimulator, steady_state_cycles_per_step
from .hdd import DecoderNode, HddTree, build_hdd_tree
from .timeline import (
    OccupancySummary,
    occupancy,
    occupancy_from_trace,
    records_from_trace,
    render_timeline,
    render_trace_timeline,
)

__all__ = [
    "ChainLatency", "LatencyConstants", "LatencyModel", "ChainRecord",
    "TimingReport", "TimingSimulator", "steady_state_cycles_per_step",
    "DecoderNode", "HddTree", "build_hdd_tree",
    "OccupancySummary", "occupancy", "occupancy_from_trace",
    "records_from_trace", "render_timeline", "render_trace_timeline",
    "serial_lower_bound",
]
