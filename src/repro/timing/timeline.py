"""Schedule visualization: text Gantt charts of chain execution.

Renders chain schedules as an ASCII timeline, one row per chain, so the
two performance regimes are visible at a glance: back-to-back MVM
occupancy for large models, and the chain-setup spacing floor for small
ones. The renderer consumes :class:`~repro.timing.report.ChainRecord`
rows from either source of schedule data — a
:class:`~repro.timing.report.TimingReport` recorded with
``record_chains=True``, or the chain spans a
:class:`~repro.obs.Tracer` captured from the same run
(:func:`records_from_trace` / :func:`render_trace_timeline`) — so the
trace and the report are two views over one schedule.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ExecutionError
from ..obs import Tracer
from .report import ChainRecord, TimingReport


@dataclasses.dataclass(frozen=True)
class OccupancySummary:
    """Aggregate resource occupancy over a run."""

    total_cycles: float
    mvm_busy_cycles: float
    chains: int
    mvm_chains: int

    @property
    def mvm_occupancy(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.mvm_busy_cycles / self.total_cycles

    def render(self) -> str:
        return (f"{self.chains} chains ({self.mvm_chains} with mv_mul), "
                f"{self.total_cycles:.0f} cycles, MVM busy "
                f"{100 * self.mvm_occupancy:.1f}%")


def occupancy(report: TimingReport) -> OccupancySummary:
    """Summarize resource occupancy of a run."""
    mvm_chains = 0
    if report.records is not None:
        mvm_chains = sum(1 for r in report.records if r.has_mv_mul)
    return OccupancySummary(
        total_cycles=report.total_cycles,
        mvm_busy_cycles=report.mvm_busy_cycles,
        chains=report.chains_executed,
        mvm_chains=mvm_chains)


def records_from_trace(tracer: Tracer) -> List[ChainRecord]:
    """Rebuild :class:`ChainRecord` rows from a scheduler trace.

    The :class:`~repro.timing.scheduler.TimingSimulator` emits one
    ``chain`` span per scheduled vector chain with the record's fields
    as attributes; this inverts that mapping so the Gantt renderer (and
    anything else built on records) runs off shared span data.
    """
    records = []
    for span in tracer.spans:
        if span.name != "chain" or "issue" not in span.attrs:
            continue
        a = span.attrs
        records.append(ChainRecord(
            index=a["index"], start=span.start, issue=a["issue"],
            depth_first=a["depth_first"], completion=span.end,
            has_mv_mul=a["mv_mul"], rows=a["rows"], cols=a["cols"]))
    return records


def occupancy_from_trace(tracer: Tracer) -> OccupancySummary:
    """Occupancy summary computed purely from a scheduler trace.

    Matches :func:`occupancy` of the same run exactly: total cycles
    come from the root ``run`` span, MVM-busy cycles from summing the
    chain spans' ``issue`` attributes in recording order (the same
    accumulation the scheduler performs).
    """
    runs = [s for s in tracer.spans if s.name == "run"]
    if not runs:
        raise ExecutionError(
            "trace has no 'run' span; pass the tracer to "
            "TimingSimulator and run a program first")
    run = runs[-1]
    mvm_busy = 0.0
    chains = 0
    mvm_chains = 0
    for span in tracer.spans:
        if span.name == "chain" and "issue" in span.attrs \
                and span.parent == run.id:
            chains += 1
            if span.attrs["mv_mul"]:
                mvm_chains += 1
                mvm_busy += span.attrs["issue"]
        elif span.name == "transfer" and span.parent == run.id:
            chains += 1
    return OccupancySummary(
        total_cycles=run.end - run.start, mvm_busy_cycles=mvm_busy,
        chains=chains, mvm_chains=mvm_chains)


def _render(records: List[ChainRecord], total_records: int,
            summary: OccupancySummary, width: int,
            labels: Optional[List[str]]) -> str:
    if not records:
        return "(no chains executed)"
    t0 = min(r.start for r in records)
    t1 = max(r.completion for r in records)
    span = max(t1 - t0, 1.0)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return int((t - t0) * scale)

    lines = [f"timeline: {len(records)} chains over "
             f"{span:.0f} cycles (1 col ~ {span / width:.0f} cyc)"]
    for rec in records:
        row = [" "] * width
        a = col(rec.start)
        b = max(col(rec.start + rec.issue), a + 1)
        c = max(col(rec.completion), b)
        mark = "M" if rec.has_mv_mul else "="
        for x in range(a, min(b, width)):
            row[x] = mark
        for x in range(b, min(c, width)):
            row[x] = "-"
        # Labels are addressed by the record's chain index, not its row
        # position: a report truncated to max_chains (or with matrix
        # chains interleaved) must still pair each row with its own
        # label.
        label = labels[rec.index] if labels and rec.index < len(labels) \
            else f"#{rec.index}"
        lines.append(f"{label:>10} |{''.join(row)}|")
    if total_records > len(records):
        lines.append(f"... {total_records - len(records)} more "
                     "chains not shown")
    lines.append(summary.render())
    return "\n".join(lines)


def render_timeline(report: TimingReport, width: int = 72,
                    max_chains: int = 48,
                    labels: Optional[List[str]] = None) -> str:
    """Render the chain schedule as an ASCII Gantt chart.

    ``M`` marks an ``mv_mul`` chain's issue window, ``=`` a point-wise
    chain's, and ``-`` the pipeline drain to completion. Requires the
    report to carry chain records (``TimingSimulator(record_chains=
    True)``).
    """
    if report.records is None:
        raise ExecutionError(
            "timeline requires a report recorded with record_chains=True")
    return _render(report.records[:max_chains], len(report.records),
                   occupancy(report), width, labels)


def render_trace_timeline(tracer: Tracer, width: int = 72,
                          max_chains: int = 48,
                          labels: Optional[List[str]] = None) -> str:
    """Render the same Gantt chart from a scheduler trace instead of a
    recorded report — one renderer, two data sources."""
    records = records_from_trace(tracer)
    return _render(records[:max_chains], len(records),
                   occupancy_from_trace(tracer), width, labels)
