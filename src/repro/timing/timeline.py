"""Schedule visualization: text Gantt charts of chain execution.

Renders a :class:`~repro.timing.report.TimingReport` recorded with
``record_chains=True`` as an ASCII timeline, one row per chain, so the
two performance regimes are visible at a glance: back-to-back MVM
occupancy for large models, and the chain-setup spacing floor for small
ones.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ExecutionError
from .report import TimingReport


@dataclasses.dataclass(frozen=True)
class OccupancySummary:
    """Aggregate resource occupancy over a run."""

    total_cycles: float
    mvm_busy_cycles: float
    chains: int
    mvm_chains: int

    @property
    def mvm_occupancy(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.mvm_busy_cycles / self.total_cycles

    def render(self) -> str:
        return (f"{self.chains} chains ({self.mvm_chains} with mv_mul), "
                f"{self.total_cycles:.0f} cycles, MVM busy "
                f"{100 * self.mvm_occupancy:.1f}%")


def occupancy(report: TimingReport) -> OccupancySummary:
    """Summarize resource occupancy of a run."""
    mvm_chains = 0
    if report.records is not None:
        mvm_chains = sum(1 for r in report.records if r.has_mv_mul)
    return OccupancySummary(
        total_cycles=report.total_cycles,
        mvm_busy_cycles=report.mvm_busy_cycles,
        chains=report.chains_executed,
        mvm_chains=mvm_chains)


def render_timeline(report: TimingReport, width: int = 72,
                    max_chains: int = 48,
                    labels: Optional[List[str]] = None) -> str:
    """Render the chain schedule as an ASCII Gantt chart.

    ``M`` marks an ``mv_mul`` chain's issue window, ``=`` a point-wise
    chain's, and ``-`` the pipeline drain to completion. Requires the
    report to carry chain records (``TimingSimulator(record_chains=
    True)``).
    """
    if report.records is None:
        raise ExecutionError(
            "timeline requires a report recorded with record_chains=True")
    records = report.records[:max_chains]
    if not records:
        return "(no chains executed)"
    t0 = min(r.start for r in records)
    t1 = max(r.completion for r in records)
    span = max(t1 - t0, 1.0)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return int((t - t0) * scale)

    lines = [f"timeline: {len(records)} chains over "
             f"{span:.0f} cycles (1 col ~ {span / width:.0f} cyc)"]
    for i, rec in enumerate(records):
        row = [" "] * width
        a = col(rec.start)
        b = max(col(rec.start + rec.issue), a + 1)
        c = max(col(rec.completion), b)
        mark = "M" if rec.has_mv_mul else "="
        for x in range(a, min(b, width)):
            row[x] = mark
        for x in range(b, min(c, width)):
            row[x] = "-"
        label = labels[i] if labels and i < len(labels) else f"#{rec.index}"
        lines.append(f"{label:>10} |{''.join(row)}|")
    if len(report.records) > max_chains:
        lines.append(f"... {len(report.records) - max_chains} more "
                     "chains not shown")
    lines.append(occupancy(report).render())
    return "\n".join(lines)
