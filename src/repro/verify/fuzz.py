"""Conformance-fuzz campaigns: generate, compare, shrink, archive.

Drives the full pipeline behind the ``repro fuzz`` CLI and the CI fuzz
gate: for each seed in a deterministic sequence, generate a program
case, run it differentially across the reference interpreter, both
functional-simulator paths, and the compiled replay path (plus a
batched-vs-sequential replay check when the plan is batchable), and on
any mismatch greedily shrink the case and archive the minimized
reproducer as a corpus JSON file.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Callable, List, Optional

from ..config import NpuConfig
from ..errors import ReproError
from .corpus import corpus_files, load_corpus_case, save_case
from .differential import CaseInvalid, run_differential
from .generator import FuzzProfile, ProgramCase, generate_case
from .shrink import shrink_case


@dataclasses.dataclass
class FuzzFailure:
    """One mismatching case, after shrinking."""

    seed: Optional[int]
    note: str
    mismatches: List[str]
    case: ProgramCase
    corpus_path: Optional[str] = None

    def render(self) -> str:
        lines = [f"FAIL {self.note} "
                 f"({self.case.instruction_count()} instructions)"]
        lines += [f"  {m}" for m in self.mismatches]
        if self.corpus_path:
            lines.append(f"  archived: {self.corpus_path}")
        return "\n".join(lines)


@dataclasses.dataclass
class FuzzReport:
    """Outcome of one fuzz campaign or corpus replay."""

    cases_run: int
    failures: List[FuzzFailure]
    invalid: int = 0
    label: str = "fuzz"

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        head = (f"{self.label}: {self.cases_run} case(s), "
                f"{len(self.failures)} failure(s)")
        if self.invalid:
            head += f", {self.invalid} invalid"
        if self.ok:
            return head + " — all engines agree"
        return "\n".join([head] + [f.render() for f in self.failures])


def run_fuzz(seed: int = 0, iterations: int = 100,
             profile: Optional[FuzzProfile] = None,
             config: Optional[NpuConfig] = None,
             corpus_dir: Optional[str] = None,
             shrink: bool = True,
             check_timing: bool = True,
             progress: Optional[Callable[[int, int], None]] = None
             ) -> FuzzReport:
    """Run ``iterations`` differential cases for seeds ``seed..seed+n-1``.

    Args:
        seed: First case seed; the campaign is fully determined by
            ``(seed, iterations, profile, config)``.
        iterations: Number of cases to generate and compare.
        profile: Opcode-weight profile (default
            :data:`~repro.verify.generator.PROFILES`\\ ``["default"]``).
        config: Pin a single NPU configuration instead of drawing from
            the fuzz pool per seed.
        corpus_dir: Directory to archive shrunk failing cases into.
        shrink: Minimize failing cases before archiving/reporting.
        check_timing: Also enforce scheduler timing invariants.
        progress: Optional ``(done, total)`` callback per case.
    """
    profile_name = profile.name if profile else "default"
    failures: List[FuzzFailure] = []
    invalid = 0
    for i in range(iterations):
        case_seed = seed + i
        case = generate_case(case_seed, profile=profile, config=config)
        try:
            result = run_differential(case, check_timing=check_timing)
        except CaseInvalid:
            invalid += 1  # generator regression; surfaced in the report
            continue
        if not result.ok:
            failures.append(_handle_failure(
                case, case_seed, result.mismatches, corpus_dir, shrink,
                check_timing))
        if progress is not None:
            progress(i + 1, iterations)
    return FuzzReport(cases_run=iterations, failures=failures,
                      invalid=invalid,
                      label=f"fuzz(seed={seed}, profile={profile_name})")


def _handle_failure(case: ProgramCase, seed: Optional[int],
                    mismatches: List[str], corpus_dir: Optional[str],
                    shrink: bool, check_timing: bool) -> FuzzFailure:
    if shrink:
        def still_failing(candidate: ProgramCase) -> bool:
            return not run_differential(
                candidate, check_timing=check_timing).ok

        case = shrink_case(case, still_failing)
        try:
            mismatches = run_differential(
                case, check_timing=check_timing).mismatches
        except CaseInvalid:  # pragma: no cover - shrinker guards this
            pass
    path = None
    if corpus_dir is not None:
        path = str(save_case(case, corpus_dir))
    return FuzzFailure(seed=seed, note=case.note or f"seed={seed}",
                       mismatches=mismatches, case=case, corpus_path=path)


def replay_corpus(directory, check_timing: bool = True) -> FuzzReport:
    """Re-run every archived corpus case; failures are not re-shrunk.

    A missing directory is an error (a mistyped path must not pass
    vacuously), but an existing empty one replays cleanly.
    """
    if not pathlib.Path(directory).is_dir():
        raise ReproError(f"corpus directory not found: {directory}")
    failures: List[FuzzFailure] = []
    files = corpus_files(directory)
    for path in files:
        case = load_corpus_case(path)
        try:
            result = run_differential(case, check_timing=check_timing)
        except CaseInvalid:
            result_mismatches = [f"corpus case no longer executes: {path}"]
            failures.append(FuzzFailure(
                seed=None, note=case.note or path.name,
                mismatches=result_mismatches, case=case,
                corpus_path=str(path)))
            continue
        if not result.ok:
            failures.append(FuzzFailure(
                seed=None, note=case.note or path.name,
                mismatches=result.mismatches, case=case,
                corpus_path=str(path)))
    return FuzzReport(cases_run=len(files), failures=failures,
                      label=f"replay({directory})")
