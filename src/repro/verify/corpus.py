"""Replayable corpus files for conformance-fuzz cases.

A corpus entry is one JSON file: the NPU configuration, the program in
assembler text (round-tripped through
:func:`~repro.isa.assembler.parse_program`, loops included), and the
initial architectural state as nested float lists. Float32 values
survive exactly — each is exactly representable as the float64 that
``json`` emits with ``repr`` precision — so replaying a corpus file
reproduces the original run bit-for-bit.

Shrunk failures land in ``tests/corpus/`` (committed), where the tier-1
suite replays them as regression tests; see docs/TESTING.md.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List

import numpy as np

from ..config import NpuConfig
from ..errors import ReproError
from ..isa.assembler import format_program, parse_program
from ..isa.memspace import MemId
from .generator import ProgramCase

#: Corpus file schema version.
CORPUS_FORMAT = 1

_VRF_ORDER = (MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf)


def case_to_json(case: ProgramCase) -> Dict[str, object]:
    """Serialize ``case`` to a JSON-compatible dict."""
    return {
        "format": CORPUS_FORMAT,
        "note": case.note,
        "config": dataclasses.asdict(case.config),
        "program_name": case.program.name,
        "program": format_program(case.program),
        "state": {
            "vrf": {mem.name: case.vrf_init[mem].tolist()
                    for mem in _VRF_ORDER},
            "dram_vectors": case.dram_vectors.tolist(),
            "dram_tiles": case.dram_tiles.tolist(),
            "netq_vectors": case.netq_vectors.tolist(),
            "netq_tiles": case.netq_tiles.tolist(),
        },
    }


def case_from_json(data: Dict[str, object]) -> ProgramCase:
    """Rebuild a :class:`ProgramCase` from :func:`case_to_json` output."""
    if data.get("format") != CORPUS_FORMAT:
        raise ReproError(
            f"unsupported corpus format {data.get('format')!r} "
            f"(expected {CORPUS_FORMAT})")
    config = NpuConfig(**data["config"])
    n = config.native_dim
    state = data["state"]

    def vectors(raw: List) -> np.ndarray:
        return np.asarray(raw, dtype=np.float32).reshape(-1, n)

    def tiles(raw: List) -> np.ndarray:
        return np.asarray(raw, dtype=np.float32).reshape(-1, n, n)

    return ProgramCase(
        config=config,
        program=parse_program(data["program"],
                              name=data.get("program_name", "corpus")),
        vrf_init={mem: vectors(state["vrf"][mem.name])
                  for mem in _VRF_ORDER},
        dram_vectors=vectors(state["dram_vectors"]),
        dram_tiles=tiles(state["dram_tiles"]),
        netq_vectors=vectors(state["netq_vectors"]),
        netq_tiles=tiles(state["netq_tiles"]),
        note=data.get("note", ""),
    )


def save_case(case: ProgramCase, path) -> pathlib.Path:
    """Write ``case`` to ``path`` (a file, or a directory to name it in)."""
    path = pathlib.Path(path)
    if path.is_dir():
        stem = case.note.split()[0].replace("=", "-") if case.note \
            else "case"
        path = path / f"{stem}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(case_to_json(case), separators=(",", ":"))
    path.write_text(payload + "\n")
    return path


def load_corpus_case(path) -> ProgramCase:
    """Load one corpus JSON file."""
    return case_from_json(json.loads(pathlib.Path(path).read_text()))


def corpus_files(directory) -> List[pathlib.Path]:
    """Sorted ``*.json`` entries under ``directory`` (empty if absent)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
