"""Differential execution of one fuzz case across every engine.

Runs a :class:`~repro.verify.generator.ProgramCase` on four functional
engines — the pure-python :class:`~repro.verify.reference.ReferenceInterpreter`,
the naive-loop :class:`~repro.functional.executor.FunctionalSimulator`,
its vectorized fast path, and the compiled replay path
(``run(compiled=True)``, :mod:`repro.functional.replay`) — from
identical initial state, and demands bit-identical architectural
snapshots, dynamic statistics, and per-opcode metrics counters. When
the compiled plan is batchable, the case is additionally stepped
through a :class:`~repro.functional.replay.BatchedReplay` with three
input-scaled requests and every request's final state is compared
against a sequential compiled run. The same program is then run
through the :class:`~repro.timing.scheduler.TimingSimulator` and
checked against program-shape-independent timing invariants (serial
lower bound, occupancy range, trace/report agreement, loop-replay
monotonicity).

Comparisons are NaN-tolerant (``equal_nan=True``): float16 saturation
can legitimately produce ``inf`` and then ``nan`` downstream, and the
conformance requirement is that every engine produces the *same* NaNs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import ReproError, UnbatchablePlanError
from ..functional.executor import FunctionalSimulator
from ..functional.replay import BatchedReplay
from ..obs.metrics import Metrics
from ..obs.trace import Tracer
from ..timing import (TimingSimulator, occupancy, occupancy_from_trace,
                      serial_lower_bound)
from .generator import ProgramCase
from .reference import ReferenceInterpreter

#: Slack for floating-point cycle accounting in timing invariants.
_CYCLE_EPS = 1e-6

#: Per-request input scale factors for the batched-replay check. All
#: exact powers of two (sign flip included), so scaling is lossless in
#: float32 and each batched lane sees bit-identical inputs to its
#: sequential twin.
_BATCH_SCALES = (1.0, 0.5, -2.0)


class CaseInvalid(ReproError):
    """Every engine rejected the program identically.

    Generated cases are well-formed by construction, so this normally
    appears only for shrink candidates (which may cut a producer chain
    that a later consumer needed); the shrinker skips such candidates.
    """


@dataclasses.dataclass
class DiffResult:
    """Outcome of one differential run."""

    case: ProgramCase
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def load_reference(case: ProgramCase) -> ReferenceInterpreter:
    """Fresh reference interpreter holding the case's initial state."""
    ref = ReferenceInterpreter(case.config)
    for mem, data in case.vrf_init.items():
        ref.load_vrf(mem, data)
    ref.load_dram_vectors(0, case.dram_vectors)
    ref.load_dram_tiles(0, case.dram_tiles)
    if case.netq_vectors.shape[0]:
        ref.push_inputs(case.netq_vectors)
    ref.push_input_tiles(case.netq_tiles)
    return ref


def load_simulator(case: ProgramCase, naive: bool,
                   metrics: Optional[Metrics] = None) -> FunctionalSimulator:
    """Fresh functional simulator holding the case's initial state."""
    sim = FunctionalSimulator(case.config, metrics=metrics, naive=naive)
    for mem, data in case.vrf_init.items():
        sim.vrfs[mem].write(0, data)
    sim.dram.write_vectors(0, case.dram_vectors)
    sim.dram.write_tiles(0, case.dram_tiles)
    for vec in case.netq_vectors:
        sim.netq.push_input(vec)
    if case.netq_tiles.shape[0]:
        sim.netq.push_input_tiles(case.netq_tiles)
    return sim


def _guarded(fn: Callable[[], None]) -> Optional[str]:
    """Run ``fn``; return ``"Type: message"`` if it raised, else None."""
    try:
        fn()
        return None
    except ReproError as exc:
        return f"{type(exc).__name__}: {exc}"


def _compare_arrays(label: str, a: np.ndarray, b: np.ndarray,
                    out: List[str]) -> None:
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        out.append(f"{label}: shape {a.shape} != {b.shape}")
        return
    if not np.array_equal(a, b, equal_nan=True):
        a64, b64 = a.astype(np.float64), b.astype(np.float64)
        delta = np.abs(a64 - b64)
        delta[np.isnan(delta)] = np.inf       # one-sided NaN: divergent
        delta[np.isnan(a64) & np.isnan(b64)] = 0.0
        idx = np.unravel_index(int(np.argmax(delta)), a.shape)
        out.append(f"{label}: worst divergence at {tuple(idx)}: "
                   f"{a[idx]!r} != {b[idx]!r}")


def _compare_snapshots(tag: str, lhs: Dict[str, object],
                       rhs: Dict[str, object], out: List[str]) -> None:
    for name in lhs["vrf"]:
        _compare_arrays(f"{tag}: vrf[{name}]", lhs["vrf"][name],
                        rhs["vrf"][name], out)
    _compare_arrays(f"{tag}: mrf", lhs["mrf"], rhs["mrf"], out)
    for space in ("dram_vectors", "dram_tiles"):
        lmap, rmap = lhs[space], rhs[space]
        if set(lmap) != set(rmap):
            out.append(f"{tag}: {space} keys {sorted(lmap)} != "
                       f"{sorted(rmap)}")
        else:
            for key in sorted(lmap):
                _compare_arrays(f"{tag}: {space}[{key}]", lmap[key],
                                rmap[key], out)
    if len(lhs["outputs"]) != len(rhs["outputs"]):
        out.append(f"{tag}: output count {len(lhs['outputs'])} != "
                   f"{len(rhs['outputs'])}")
    else:
        for i, (a, b) in enumerate(zip(lhs["outputs"], rhs["outputs"])):
            _compare_arrays(f"{tag}: outputs[{i}]", a, b, out)
    for field in ("netq_pending_inputs", "netq_pending_tiles",
                  "scalar_regs"):
        if lhs[field] != rhs[field]:
            out.append(f"{tag}: {field} {lhs[field]!r} != {rhs[field]!r}")


def _op_counters(metrics: Metrics) -> Dict[str, int]:
    prefix = "executor.ops."
    return {name[len(prefix):]: int(counter.value)
            for name, counter in metrics.counters.items()
            if name.startswith(prefix)}


def run_differential(case: ProgramCase,
                     check_timing: bool = True) -> DiffResult:
    """Execute ``case`` on every engine and collect conformance failures.

    Returns a :class:`DiffResult` whose ``mismatches`` list is empty iff
    all engines agree and every timing invariant holds. Raises
    :class:`CaseInvalid` when all four functional engines reject the
    program with the same error type (an ill-formed case, not a bug).
    """
    ref = load_reference(case)
    naive_metrics, vec_metrics, comp_metrics = (Metrics(), Metrics(),
                                                Metrics())
    naive = load_simulator(case, naive=True, metrics=naive_metrics)
    vec = load_simulator(case, naive=False, metrics=vec_metrics)
    comp = load_simulator(case, naive=False, metrics=comp_metrics)

    errors = {
        "reference": _guarded(lambda: ref.run(case.program)),
        "naive": _guarded(lambda: naive.run(case.program)),
        "vectorized": _guarded(lambda: vec.run(case.program)),
        "compiled": _guarded(
            lambda: comp.run(case.program, compiled=True)),
    }
    raised = {k: v for k, v in errors.items() if v is not None}
    if len(raised) == len(errors):
        kinds = {v.split(":", 1)[0] for v in raised.values()}
        if len(kinds) == 1:
            raise CaseInvalid(next(iter(raised.values())))
        return DiffResult(case, [
            f"engines all raised but disagree on the error: {raised}"])
    if raised:
        return DiffResult(case, [
            f"only {sorted(raised)} raised: {raised}"])

    mismatches: List[str] = []
    ref_snap = ref.snapshot()
    _compare_snapshots("reference vs naive", ref_snap, naive.snapshot(),
                       mismatches)
    _compare_snapshots("naive vs vectorized", naive.snapshot(),
                       vec.snapshot(), mismatches)
    _compare_snapshots("vectorized vs compiled", vec.snapshot(),
                       comp.snapshot(), mismatches)

    ref_stats = ref.stats_dict()
    for sim, tag in ((naive, "naive"), (vec, "vectorized"),
                     (comp, "compiled")):
        got = {"chains_executed": sim.stats.chains_executed,
               "instructions_executed": sim.stats.instructions_executed,
               "mv_mul_count": sim.stats.mv_mul_count,
               "macs": sim.stats.macs,
               "pointwise_flops": sim.stats.pointwise_flops}
        if got != ref_stats:
            mismatches.append(
                f"stats reference vs {tag}: {ref_stats} != {got}")

    for metrics, tag in ((naive_metrics, "naive"),
                         (vec_metrics, "vectorized"),
                         (comp_metrics, "compiled")):
        ops = _op_counters(metrics)
        want = {k: v for k, v in ref.op_counts.items() if v}
        if ops != want:
            mismatches.append(
                f"op counters reference vs {tag}: {want} != {ops}")
    naive_counts = {n: c.value for n, c in naive_metrics.counters.items()}
    vec_counts = {n: c.value for n, c in vec_metrics.counters.items()}
    comp_counts = {n: c.value for n, c in comp_metrics.counters.items()}
    if naive_counts != vec_counts:
        mismatches.append(f"metrics counters naive vs vectorized: "
                          f"{naive_counts} != {vec_counts}")
    if vec_counts != comp_counts:
        mismatches.append(f"metrics counters vectorized vs compiled: "
                          f"{vec_counts} != {comp_counts}")

    mismatches.extend(check_batched_replay(case))

    if check_timing:
        mismatches.extend(check_timing_invariants(case, ref))
    return DiffResult(case, mismatches)


def check_batched_replay(case: ProgramCase) -> List[str]:
    """Batched replay vs per-request sequential compiled runs.

    Builds a :class:`BatchedReplay` whose requests see the case's
    network-input vectors scaled by :data:`_BATCH_SCALES` (all other
    initial state is shared), runs it, and demands every request's
    :meth:`~BatchedReplay.snapshot` be bit-identical to a sequential
    ``run(compiled=True)`` of the correspondingly scaled case. Batchable
    plans are additionally re-run with a deterministic subset of chain
    events *forced* into loopable interpreted fallback steps
    (``force_fallback``) — the widened batchable subset must stay bit
    identical to the fully compiled path. Unbatchable plans (a broken
    fallback tail) must be rejected with
    :class:`~repro.errors.UnbatchablePlanError` naming the offending
    step kinds.
    """
    batch = len(_BATCH_SCALES)
    empty_netq = case.netq_vectors[:0]
    base = load_simulator(
        dataclasses.replace(case, netq_vectors=empty_netq), naive=False)
    plan = base.plan_for(case.program)
    if not plan.batchable:
        out: List[str] = []
        try:
            BatchedReplay(base, case.program, batch)
        except UnbatchablePlanError as exc:
            if not exc.step_kinds:
                out.append("unbatchable plan raised without step kinds")
            if tuple(exc.step_kinds) != tuple(plan.fallback_step_kinds):
                out.append(
                    f"unbatchable step kinds {exc.step_kinds!r} != plan "
                    f"diagnostics {plan.fallback_step_kinds!r}")
        except ReproError as exc:
            out.append(f"unbatchable plan raised {type(exc).__name__} "
                       f"instead of UnbatchablePlanError: {exc}")
        else:
            out.append("unbatchable plan accepted by BatchedReplay")
        return out

    out = _check_batched_against_sequential(case, base, None, "batched")
    # Forced-fallback arm: demote every third chain event to a loopable
    # interpreted step. Forcing is semantically the identity, so the
    # same sequential runs remain the ground truth.
    forced_base = load_simulator(
        dataclasses.replace(case, netq_vectors=empty_netq), naive=False)
    out.extend(_check_batched_against_sequential(
        case, forced_base, lambda pos, event: pos % 3 == 1,
        "batched+fallback"))
    return out


def _check_batched_against_sequential(case: ProgramCase, base,
                                      force_fallback,
                                      tag: str) -> List[str]:
    """One batched replay (optionally with forced fallback steps) vs
    per-request sequential compiled runs of the scaled cases."""
    batch = len(_BATCH_SCALES)
    out: List[str] = []
    try:
        replay = BatchedReplay(base, case.program, batch,
                               force_fallback=force_fallback)
    except ReproError as exc:
        return [f"{tag}: BatchedReplay rejected a batchable plan: "
                f"{type(exc).__name__}: {exc}"]
    for vec in case.netq_vectors:
        replay.push_input(np.stack([vec * s for s in _BATCH_SCALES]))
    batched_err = _guarded(replay.run)

    for b, scale in enumerate(_BATCH_SCALES):
        scaled = dataclasses.replace(
            case, netq_vectors=case.netq_vectors * scale)
        sim = load_simulator(scaled, naive=False)
        seq_err = _guarded(lambda: sim.run(case.program, compiled=True))
        if (batched_err is None) != (seq_err is None):
            out.append(f"{tag}[{b}]: batched raised {batched_err!r}, "
                       f"sequential raised {seq_err!r}")
            continue
        if batched_err is not None:
            kind = batched_err.split(":", 1)[0]
            if seq_err.split(":", 1)[0] != kind:
                out.append(f"{tag}[{b}]: error {batched_err!r} != "
                           f"sequential {seq_err!r}")
            continue
        _compare_snapshots(f"{tag}[{b}] vs sequential compiled",
                           replay.snapshot(b), sim.snapshot(), out)
    return out


def check_timing_invariants(case: ProgramCase,
                            ref: ReferenceInterpreter) -> List[str]:
    """Timing-model invariants that hold for any well-formed program."""
    out: List[str] = []
    tracer = Tracer()
    timer = TimingSimulator(case.config, record_chains=True, tracer=tracer)
    report = timer.run(case.program, include_invocation_overhead=False)

    bound = serial_lower_bound(case.program, case.config)
    if report.total_cycles < bound - _CYCLE_EPS:
        out.append(f"total_cycles {report.total_cycles} below serial "
                   f"lower bound {bound}")
    occ = report.mvm_occupancy
    if not (0.0 <= occ <= 1.0 + _CYCLE_EPS):
        out.append(f"mvm_occupancy {occ} outside [0, 1]")

    from_report = occupancy(report)
    from_trace = occupancy_from_trace(tracer)
    if (abs(from_report.total_cycles - from_trace.total_cycles)
            > _CYCLE_EPS
            or abs(from_report.mvm_busy_cycles
                   - from_trace.mvm_busy_cycles) > _CYCLE_EPS
            or from_report.chains != from_trace.chains):
        out.append(f"occupancy report {from_report} != trace {from_trace}")

    if report.chains_executed != ref.chains_executed:
        out.append(f"timing chains {report.chains_executed} != dynamic "
                   f"chains {ref.chains_executed}")
    if report.instructions_dispatched != ref.instructions_executed:
        out.append(f"timing instructions {report.instructions_dispatched} "
                   f"!= dynamic instructions {ref.instructions_executed}")

    replay = TimingSimulator(case.config, replay_loops=True).run(
        case.program, include_invocation_overhead=False)
    if replay.total_cycles > report.total_cycles + _CYCLE_EPS:
        out.append(f"replay_loops cycles {replay.total_cycles} exceed "
                   f"cold-schedule cycles {report.total_cycles}")
    return out
