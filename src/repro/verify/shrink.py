"""Greedy minimization of failing fuzz cases.

Given a :class:`~repro.verify.generator.ProgramCase` and a failure
predicate, repeatedly tries structurally smaller variants — dropping
event spans, unrolling loops, deleting in-chain instructions — and keeps
any variant that still fails, iterating to a fixpoint. A final data pass
zeroes initial-state arrays that the failure does not depend on.

Candidates need not be well-formed: deleting a producer chain can starve
a later consumer, and deleting instructions can violate chain structure.
Ill-formed candidates (chain construction errors, or
:class:`~repro.verify.differential.CaseInvalid` from the predicate) are
simply skipped, so the shrinker needs no constraint tracking of its own.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

import numpy as np

from ..errors import ReproError
from ..isa.chain import InstructionChain
from ..isa.program import Loop, NpuProgram
from .differential import CaseInvalid, run_differential
from .generator import ProgramCase


def default_failure_predicate(case: ProgramCase) -> bool:
    """True iff the differential runner reports a mismatch."""
    try:
        return not run_differential(case).ok
    except CaseInvalid:
        return False


def shrink_case(case: ProgramCase,
                is_failing: Callable[[ProgramCase], bool] = None,
                max_steps: int = 500) -> ProgramCase:
    """Minimize ``case`` while ``is_failing`` stays true.

    ``max_steps`` bounds the number of *accepted* shrinks (each accepted
    shrink strictly reduces the instruction count, so the bound is never
    reached in practice; it guards against a pathological predicate).
    """
    if is_failing is None:
        is_failing = default_failure_predicate
    best = case
    for _ in range(max_steps):
        for candidate in _structural_candidates(best):
            if candidate.instruction_count() >= best.instruction_count():
                continue
            if _fails(candidate, is_failing):
                best = candidate
                break
        else:
            break  # no structural candidate survived: fixpoint
    changed = True
    while changed:  # restart so accepted zeroings compound
        changed = False
        for candidate in _data_candidates(best):
            if _fails(candidate, is_failing):
                best = candidate
                changed = True
                break
    if best is not case:
        best = dataclasses.replace(
            best, note=f"{case.note} shrunk from "
                       f"{case.instruction_count()} to "
                       f"{best.instruction_count()} instructions")
    return best


def _fails(case: ProgramCase,
           is_failing: Callable[[ProgramCase], bool]) -> bool:
    try:
        return bool(is_failing(case))
    except (CaseInvalid, ReproError):
        return False


def _rebuild(case: ProgramCase, items: List[object]) -> ProgramCase:
    program = NpuProgram(tuple(items), name=case.program.name)
    return dataclasses.replace(case, program=program)


def _structural_candidates(case: ProgramCase) -> Iterator[ProgramCase]:
    """Smaller program variants, largest deletions first."""
    items = list(case.program.items)
    n = len(items)
    # Span deletions: halves down to single events.
    length = max(1, n // 2)
    while length >= 1:
        for start in range(0, n - length + 1):
            yield _rebuild(case, items[:start] + items[start + length:])
        length //= 2
    # Loop simplification: unroll to a single iteration, or halve count.
    for i, item in enumerate(items):
        if not isinstance(item, Loop):
            continue
        yield _rebuild(case, items[:i] + list(item.body) + items[i + 1:])
        if isinstance(item.count, int) and item.count > 2:
            smaller = Loop(item.count // 2, item.body)
            yield _rebuild(case, items[:i] + [smaller] + items[i + 1:])
    # In-chain instruction deletions (invalid structures are skipped).
    for i, item in enumerate(items):
        if not isinstance(item, InstructionChain):
            continue  # scalar writes: covered by span deletion above
        instrs = list(item.instructions)
        if len(instrs) <= 2:
            continue  # already minimal (head + terminal)
        for j in range(len(instrs)):
            try:
                chain = InstructionChain(instrs[:j] + instrs[j + 1:])
            except ReproError:
                continue
            yield _rebuild(case, items[:i] + [chain] + items[i + 1:])


def _data_candidates(case: ProgramCase) -> Iterator[ProgramCase]:
    """Same program, simpler initial state (arrays zeroed one at a time)."""
    for mem in sorted(case.vrf_init, key=lambda m: m.name):
        if not case.vrf_init[mem].any():
            continue
        zeroed = {m: (np.zeros_like(a) if m is mem else a)
                  for m, a in case.vrf_init.items()}
        yield dataclasses.replace(case, vrf_init=zeroed)
    for field in ("dram_vectors", "dram_tiles", "netq_vectors",
                  "netq_tiles"):
        data = getattr(case, field)
        if not data.size or not data.any():
            continue
        yield dataclasses.replace(case, **{field: np.zeros_like(data)})
