"""Deliberately simple reference interpreter for conformance fuzzing.

Defines the ground-truth semantics of the BW NPU ISA (paper Table II,
Section IV-C) independently of :mod:`repro.functional.executor`'s
vectorized fast paths: architectural state is plain numpy arrays and
dicts, mega-SIMD ``rows``/``columns`` tiling is an explicit python loop
over native tiles, MVM dot products accumulate scalar-by-scalar, and BFP
quantization uses the pure-python oracle
:func:`repro.numerics.bfp.quantize_reference`.

Bit-exactness notes (why a python loop can match the vectorized engine):

* Quantized MVM — within one scale block every product shares a single
  power-of-two scale, so float64 partial sums are exact integers times
  that scale; any summation order yields the same value. Cross-block
  terms are accumulated in the executor's reference order — ``(c, k)``
  lexicographic over column tiles ``c`` and sub-row scale blocks ``k``
  — so those (inexact) float64 additions match too.
* Exact-mode MVM (``mantissa_bits == 0``) — each tile contribution is
  computed with the same per-tile float64 matvec expression as the
  executor's naive loop, keeping BLAS summation order identical.
* Point-wise ops are IEEE float32 element-wise operations (order-free);
  transcendental activations delegate to the same numpy ufunc applied to
  the same-shaped array, because *numpy's* tanh/exp are the definition of
  ground truth here and ufunc results may differ by ULPs across
  array-shape-dependent SIMD paths.
"""

from __future__ import annotations

import collections
from typing import Dict, List, Optional

import numpy as np

from ..config import NpuConfig
from ..errors import ExecutionError, MemoryError_, NetworkQueueEmptyError
from ..isa.chain import InstructionChain
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import Opcode
from ..isa.program import NpuProgram, SetScalar
from ..numerics.bfp import quantize_reference

#: VRF memory spaces, in snapshot order.
_VRFS = (MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf)


def _f16(x: np.ndarray) -> np.ndarray:
    """Round to float16, return float32 (the pipeline word type).

    Values beyond float16 range saturate to ``inf`` by design (the
    paper's narrow pipeline word); the numpy overflow warning is noise.
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float16).astype(np.float32)


class ReferenceInterpreter:
    """Naive, loop-based executor defining ISA ground truth."""

    def __init__(self, config: NpuConfig):
        self.config = config
        n = config.native_dim
        self.exact = config.mantissa_bits == 0
        self._fmt = config.bfp_format
        depths = {MemId.InitialVrf: config.initial_vrf_depth,
                  MemId.AddSubVrf: config.addsub_vrf_depth,
                  MemId.MultiplyVrf: config.multiply_vrf_depth}
        self.vrfs: Dict[MemId, np.ndarray] = {
            mem: np.zeros((depths[mem], n), dtype=np.float32)
            for mem in _VRFS}
        self.mrf = np.zeros((config.mrf_address_space, n, n),
                            dtype=np.float32)
        self.dram_vectors: Dict[int, np.ndarray] = {}
        self.dram_tiles: Dict[int, np.ndarray] = {}
        self.netq_in: collections.deque = collections.deque()
        self.netq_in_tiles: collections.deque = collections.deque()
        self.outputs: List[np.ndarray] = []
        self.scalar_regs: Dict[ScalarReg, int] = {
            ScalarReg.Rows: 1, ScalarReg.Columns: 1, ScalarReg.Iterations: 0}
        self.op_counts: Dict[str, int] = collections.defaultdict(int)
        self.chains_executed = 0
        self.instructions_executed = 0
        self.mv_mul_count = 0
        self.macs = 0
        self.pointwise_flops = 0

    # -- host-facing state loading ---------------------------------------

    def load_vrf(self, mem: MemId, data: np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.float32)
        self.vrfs[mem][:arr.shape[0]] = arr

    def load_dram_vectors(self, index: int, vectors: np.ndarray) -> None:
        for i, vec in enumerate(np.atleast_2d(vectors)):
            self.dram_vectors[index + i] = \
                np.array(vec, dtype=np.float32)

    def load_dram_tiles(self, index: int, tiles: np.ndarray) -> None:
        for i, tile in enumerate(tiles):
            self.dram_tiles[index + i] = np.array(tile, dtype=np.float32)

    def push_inputs(self, vectors: np.ndarray) -> None:
        for vec in np.atleast_2d(vectors):
            self.netq_in.append(np.array(vec, dtype=np.float32))

    def push_input_tiles(self, tiles: np.ndarray) -> None:
        for tile in tiles:
            self.netq_in_tiles.append(np.array(tile, dtype=np.float32))

    # -- execution -------------------------------------------------------

    def run(self, program: NpuProgram,
            bindings: Optional[Dict[str, int]] = None) -> None:
        for event in program.events(bindings):
            if isinstance(event, SetScalar):
                self._set_scalar(event)
            else:
                self._chain(event)

    def _set_scalar(self, event: SetScalar) -> None:
        if event.reg in (ScalarReg.Rows, ScalarReg.Columns) \
                and event.value < 1:
            raise ExecutionError(f"{event.reg.name} must be >= 1")
        self.scalar_regs[event.reg] = event.value
        self.instructions_executed += 1
        self.op_counts["set_scalar"] += 1

    def _chain(self, chain: InstructionChain) -> None:
        self.chains_executed += 1
        self.instructions_executed += len(chain) + 1
        if chain.is_matrix_chain:
            self._matrix_chain(chain)
        else:
            self._check_mfu_capacity(chain)
            self._vector_chain(chain)
        self.op_counts["end_chain"] += 1

    def _check_mfu_capacity(self, chain: InstructionChain) -> None:
        """Greedy MFU routing check, re-derived from Section V-B: each
        MFU offers one add/sub, one multiply, and one activation unit."""
        mfu, used = 0, set()
        for instr in chain.instructions:
            category = instr.info.fu_category
            if category is None:
                continue
            while category in used:
                mfu += 1
                used = set()
            if mfu >= self.config.mfus:
                raise ExecutionError(
                    f"chain requires more than {self.config.mfus} MFUs")
            used.add(category)

    # -- matrix chains ---------------------------------------------------

    def _matrix_chain(self, chain: InstructionChain) -> None:
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        count = rows * cols
        rd, wr = chain.instructions
        if rd.mem_id is MemId.NetQ:
            if len(self.netq_in_tiles) < count:
                raise NetworkQueueEmptyError(
                    f"m_rd(NetQ) needs {count} tile(s)")
            tiles = [self.netq_in_tiles.popleft() for _ in range(count)]
        else:
            tiles = []
            for i in range(count):
                if rd.index + i not in self.dram_tiles:
                    raise MemoryError_(
                        f"DRAM tile {rd.index + i} never written")
                tiles.append(self.dram_tiles[rd.index + i].copy())
        self.op_counts["m_rd"] += 1
        if wr.mem_id is MemId.MatrixRf:
            if wr.index + count > self.mrf.shape[0]:
                raise MemoryError_("MRF tile write out of range")
            for i, tile in enumerate(tiles):
                if not self.exact:
                    # Weights quantize on MRF initialization, one shared
                    # exponent per native row.
                    tile = quantize_reference(tile, self._fmt)
                self.mrf[wr.index + i] = tile
        else:
            for i, tile in enumerate(tiles):
                self.dram_tiles[wr.index + i] = np.array(tile)
        self.op_counts["m_wr"] += 1

    # -- vector chains ---------------------------------------------------

    def _vector_chain(self, chain: InstructionChain) -> None:
        rows = self.scalar_regs[ScalarReg.Rows]
        cols = self.scalar_regs[ScalarReg.Columns]
        width_in = cols if chain.has_mv_mul else rows
        head = chain.source
        value = self._read(head, width_in)
        self.op_counts["v_rd"] += 1
        for instr in chain.instructions[1:]:
            op = instr.opcode
            if op is Opcode.MV_MUL:
                value = self._mv_mul(instr, value, rows, cols)
            elif op is Opcode.VV_MUL:
                operand = self._vrf_slice(MemId.MultiplyVrf, instr.index,
                                          rows)
                value = _f16_unless(value * operand, self.exact)
                self.pointwise_flops += value.size
            elif op in (Opcode.VV_ADD, Opcode.VV_A_SUB_B,
                        Opcode.VV_B_SUB_A, Opcode.VV_MAX):
                operand = self._vrf_slice(MemId.AddSubVrf, instr.index,
                                          rows)
                if op is Opcode.VV_ADD:
                    result = value + operand
                elif op is Opcode.VV_A_SUB_B:
                    result = value - operand
                elif op is Opcode.VV_B_SUB_A:
                    result = operand - value
                else:
                    result = np.maximum(value, operand)
                value = _f16_unless(result, self.exact)
                self.pointwise_flops += value.size
            elif op is Opcode.V_RELU:
                value = _f16_unless(np.maximum(value, np.float32(0.0)),
                                    self.exact)
                self.pointwise_flops += value.size
            elif op is Opcode.V_SIGM:
                a64 = value.astype(np.float64)
                with np.errstate(over="ignore"):
                    value = _f16_unless(
                        (1.0 / (1.0 + np.exp(-a64))).astype(np.float32),
                        self.exact)
                self.pointwise_flops += value.size
            elif op is Opcode.V_TANH:
                value = _f16_unless(
                    np.tanh(value.astype(np.float64)).astype(np.float32),
                    self.exact)
                self.pointwise_flops += value.size
            elif op is Opcode.V_WR:
                self._write(instr, value)
            else:
                raise ExecutionError(f"unexpected opcode {op} in chain")
            self.op_counts[op.name.lower()] += 1

    def _read(self, instr, count: int) -> np.ndarray:
        mem = instr.mem_id
        if mem is MemId.NetQ:
            if len(self.netq_in) < count:
                raise NetworkQueueEmptyError(
                    f"v_rd(NetQ) needs {count} vector(s)")
            return np.stack([self.netq_in.popleft() for _ in range(count)])
        if mem is MemId.Dram:
            out = np.zeros((count, self.config.native_dim),
                           dtype=np.float32)
            for i in range(count):
                if instr.index + i not in self.dram_vectors:
                    raise MemoryError_(
                        f"DRAM vector {instr.index + i} never written")
                out[i] = self.dram_vectors[instr.index + i]
            return out
        return self._vrf_slice(mem, instr.index, count).copy()

    def _vrf_slice(self, mem: MemId, index: int, count: int) -> np.ndarray:
        data = self.vrfs[mem]
        if index < 0 or index + count > data.shape[0]:
            raise MemoryError_(
                f"{mem.name}: access [{index}, {index + count}) out of "
                f"range (depth {data.shape[0]})")
        return data[index:index + count]

    def _write(self, instr, value: np.ndarray) -> None:
        value = np.atleast_2d(value)
        mem = instr.mem_id
        if mem is MemId.NetQ:
            for vec in value:
                self.outputs.append(np.array(vec, dtype=np.float32))
        elif mem is MemId.Dram:
            for i, vec in enumerate(value):
                self.dram_vectors[instr.index + i] = \
                    np.array(vec, dtype=np.float32)
        else:
            self._vrf_slice(mem, instr.index, value.shape[0])[:] = value

    # -- mega-SIMD MVM ----------------------------------------------------

    def _mv_mul(self, instr, value: np.ndarray, rows: int,
                cols: int) -> np.ndarray:
        n = self.config.native_dim
        value = np.atleast_2d(value)
        if value.shape != (cols, n):
            raise ExecutionError(
                f"mv_mul expected {cols} input vector(s) of length {n}, "
                f"got shape {value.shape}")
        base = instr.index
        if base + rows * cols > self.config.mrf_address_space:
            raise MemoryError_("mv_mul tile window exceeds MRF")
        self.mv_mul_count += 1
        self.macs += rows * cols * n * n
        if self.exact:
            inputs = value.astype(np.float64)
            out = np.zeros((rows, n), dtype=np.float64)
            for r in range(rows):
                for c in range(cols):
                    tile = self.mrf[base + r * cols + c]
                    # Same per-tile float64 matvec as the executor's
                    # naive loop — unquantized sums are order-sensitive.
                    out[r] += tile.astype(np.float64) @ inputs[c]
            return out.astype(np.float32)
        quantized = quantize_reference(value, self._fmt)
        bs = self._fmt.block_size
        nb = n // bs
        out = np.zeros((rows, n), dtype=np.float64)
        for r in range(rows):
            acc = [0.0] * n
            for c in range(cols):
                tile = self.mrf[base + r * cols + c]
                for i in range(n):
                    total = acc[i]
                    for k in range(nb):
                        # One scale-block dot: products share a single
                        # power-of-two scale, so float64 accumulation
                        # is exact in any order.
                        dot = 0.0
                        for j in range(k * bs, (k + 1) * bs):
                            dot += float(tile[i, j]) * float(quantized[c, j])
                        # Cross-block additions are inexact: reference
                        # order is (c, k) lexicographic.
                        total += dot
                    acc[i] = total
            out[r] = acc
        return _f16(out.astype(np.float32))

    # -- comparison ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Architectural state in the executor's snapshot schema."""
        return {
            "vrf": {mem.name: self.vrfs[mem].copy() for mem in _VRFS},
            "mrf": self.mrf.copy(),
            "dram_vectors": {k: v.copy()
                             for k, v in self.dram_vectors.items()},
            "dram_tiles": {k: v.copy()
                           for k, v in self.dram_tiles.items()},
            "outputs": [v.copy() for v in self.outputs],
            "netq_pending_inputs": len(self.netq_in),
            "netq_pending_tiles": len(self.netq_in_tiles),
            "scalar_regs": dict(self.scalar_regs),
        }

    def stats_dict(self) -> Dict[str, int]:
        return {
            "chains_executed": self.chains_executed,
            "instructions_executed": self.instructions_executed,
            "mv_mul_count": self.mv_mul_count,
            "macs": self.macs,
            "pointwise_flops": self.pointwise_flops,
        }


def _f16_unless(x: np.ndarray, exact: bool) -> np.ndarray:
    result = np.asarray(x, dtype=np.float32)
    return result if exact else _f16(result)
