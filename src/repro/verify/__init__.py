"""Conformance fuzzing: random ISA programs vs. a reference interpreter.

The pipeline (ROADMAP item "differential conformance fuzzer"):

1. :mod:`~repro.verify.generator` builds seeded, well-formed random
   programs plus the initial architectural state they run against.
2. :mod:`~repro.verify.reference` defines ground-truth ISA semantics in
   deliberately simple python, independent of the executor fast paths.
3. :mod:`~repro.verify.differential` runs each case on the reference,
   the naive simulator, and the vectorized simulator, demanding
   bit-identical state/stats/counters and scheduler timing invariants.
4. :mod:`~repro.verify.shrink` greedily minimizes failing cases, and
   :mod:`~repro.verify.corpus` archives them as replayable JSON files.
5. :mod:`~repro.verify.fuzz` is the campaign driver behind the
   ``repro fuzz`` CLI and the CI fuzz gate.
"""

from .corpus import case_from_json, case_to_json, load_corpus_case, save_case
from .differential import (CaseInvalid, DiffResult, check_timing_invariants,
                           load_reference, load_simulator, run_differential)
from .fuzz import FuzzFailure, FuzzReport, replay_corpus, run_fuzz
from .generator import (FORMAT_POOL, FUZZ_CONFIGS, PROFILES, FuzzProfile,
                        ProgramCase, generate_case)
from .reference import ReferenceInterpreter
from .shrink import shrink_case

__all__ = [
    "CaseInvalid", "DiffResult", "check_timing_invariants",
    "load_reference", "load_simulator", "run_differential",
    "FORMAT_POOL", "FUZZ_CONFIGS", "PROFILES", "FuzzProfile", "ProgramCase",
    "generate_case", "ReferenceInterpreter", "shrink_case",
    "case_from_json", "case_to_json", "load_corpus_case", "save_case",
    "FuzzFailure", "FuzzReport", "replay_corpus", "run_fuzz",
]
