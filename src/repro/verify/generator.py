"""Seeded random generator of well-formed NPU programs.

Produces :class:`ProgramCase` objects — a small NPU configuration, a
validated :class:`~repro.isa.program.NpuProgram`, and the initial
architectural state it runs against — suitable for differential
execution on the reference interpreter and both functional-simulator
paths.

Generation is constraint-tracking rather than generate-and-filter: the
generator knows the live ``rows``/``columns`` values, the network-queue
balance, the populated DRAM regions, and the MFU routing capacity, so
every emitted program executes without errors by construction. Opcode
mix is steered by a :class:`FuzzProfile` (Table II opcode weights).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import NpuConfig
from ..isa import instructions as ins
from ..isa.chain import InstructionChain
from ..isa.memspace import MemId, ScalarReg
from ..isa.opcodes import FuCategory, Opcode
from ..isa.program import Loop, NpuProgram, SetScalar

def _fuzz_config(name: str, dim: int, mb: int, **kw) -> NpuConfig:
    return NpuConfig(name=name, tile_engines=2, lanes=4, native_dim=dim,
                     mrf_size=48, mfus=2, initial_vrf_depth=32,
                     addsub_vrf_depth=32, multiply_vrf_depth=32,
                     mantissa_bits=mb, **kw)


#: Pool of small configurations the fuzzer draws from: BFP-quantized at
#: both Table IV mantissa widths, exact mode, a wider native dimension,
#: and the Microscaling-style format family (sub-native scale blocks,
#: E8M0 power-of-two scales, per-tile granularity). All are tiny so the
#: pure-python reference stays fast.
FUZZ_CONFIGS: Dict[str, NpuConfig] = {
    cfg.name: cfg for cfg in [
        _fuzz_config("fuzz8_m2", 8, 2),
        _fuzz_config("fuzz8_m5", 8, 5),
        _fuzz_config("fuzz8_exact", 8, 0),
        _fuzz_config("fuzz16_m2", 16, 2),
        # -- format-family configs (the ``formats`` profile pool) --------
        _fuzz_config("fuzz16_mx8", 16, 7, exponent_bits=8,
                     bfp_block_size=4, scale_encoding="e8m0"),
        _fuzz_config("fuzz16_mx4", 16, 3, exponent_bits=8,
                     bfp_block_size=8, scale_encoding="e8m0"),
        _fuzz_config("fuzz8_b4", 8, 2, bfp_block_size=4),
        _fuzz_config("fuzz8_b2m5", 8, 5, bfp_block_size=2),
        _fuzz_config("fuzz8_tile", 8, 3, bfp_block_size=4,
                     scale_granularity="tile"),
        _fuzz_config("fuzz16_tile_mx", 16, 5, exponent_bits=8,
                     bfp_block_size=4, scale_granularity="tile",
                     scale_encoding="e8m0"),
    ]
}

#: Configuration names the format-family profile cycles through: every
#: scale-block size, encoding, and granularity variant plus one classic
#: whole-row format as the nb == 1 control.
FORMAT_POOL = ("fuzz16_mx8", "fuzz16_mx4", "fuzz8_b4", "fuzz8_b2m5",
               "fuzz8_tile", "fuzz16_tile_mx", "fuzz8_m2")


@dataclasses.dataclass(frozen=True)
class FuzzProfile:
    """Opcode/shape weights steering program generation."""

    name: str = "default"
    #: Relative event weights.
    w_scalar_write: float = 2.0
    w_matrix_chain: float = 1.5
    w_vector_chain: float = 8.0
    w_loop: float = 1.0
    #: Probability a vector chain carries an ``mv_mul``.
    p_mv_mul: float = 0.55
    #: Probability a chain head / terminal touches the network queue.
    p_netq: float = 0.25
    #: Point-wise opcode weights (Table II PWV rows).
    pointwise_weights: Sequence[float] = (1.0,) * 8
    #: Mean number of point-wise ops per vector chain.
    mean_pointwise: float = 2.0
    #: Probability of a multicast (second ``v_wr``) terminal.
    p_multicast: float = 0.2
    #: Maximum mega-SIMD rows/columns multiplier.
    max_dim: int = 3
    #: Events per program (before loop folding).
    min_events: int = 4
    max_events: int = 14
    #: Restrict the per-seed configuration draw to these
    #: :data:`FUZZ_CONFIGS` names (``None`` = the whole pool).
    config_pool: Optional[Sequence[str]] = None


#: Named opcode-weight profiles for the CLI.
PROFILES: Dict[str, FuzzProfile] = {
    "default": FuzzProfile(),
    "mvm": FuzzProfile(name="mvm", p_mv_mul=0.95, w_matrix_chain=3.0,
                       mean_pointwise=1.0),
    "pointwise": FuzzProfile(name="pointwise", p_mv_mul=0.1,
                             w_matrix_chain=0.5, mean_pointwise=3.5,
                             p_multicast=0.35),
    "memory": FuzzProfile(name="memory", p_mv_mul=0.3, w_matrix_chain=4.0,
                          p_netq=0.5, mean_pointwise=0.8),
    "formats": FuzzProfile(name="formats", p_mv_mul=0.9,
                           w_matrix_chain=2.5, mean_pointwise=1.0,
                           config_pool=FORMAT_POOL),
}

#: Point-wise opcodes in the order ``pointwise_weights`` indexes them.
_POINTWISE = (Opcode.VV_ADD, Opcode.VV_A_SUB_B, Opcode.VV_B_SUB_A,
              Opcode.VV_MAX, Opcode.VV_MUL, Opcode.V_RELU, Opcode.V_SIGM,
              Opcode.V_TANH)

_FU_OF = {Opcode.VV_ADD: FuCategory.ADD_SUB,
          Opcode.VV_A_SUB_B: FuCategory.ADD_SUB,
          Opcode.VV_B_SUB_A: FuCategory.ADD_SUB,
          Opcode.VV_MAX: FuCategory.ADD_SUB,
          Opcode.VV_MUL: FuCategory.MULTIPLY,
          Opcode.V_RELU: FuCategory.ACTIVATION,
          Opcode.V_SIGM: FuCategory.ACTIVATION,
          Opcode.V_TANH: FuCategory.ACTIVATION}


@dataclasses.dataclass
class ProgramCase:
    """One fuzz case: configuration, program, and initial state."""

    config: NpuConfig
    program: NpuProgram
    #: Initial VRF contents, full arrays of shape (depth, N).
    vrf_init: Dict[MemId, np.ndarray]
    #: Pre-populated DRAM vector region starting at index 0, (D, N).
    dram_vectors: np.ndarray
    #: Pre-populated DRAM tile region starting at index 0, (T, N, N).
    dram_tiles: np.ndarray
    #: Vectors queued on the network input, (Q, N).
    netq_vectors: np.ndarray
    #: Matrix tiles queued on the network input, (QT, N, N).
    netq_tiles: np.ndarray
    #: Provenance note (seed, profile, shrink history).
    note: str = ""

    def instruction_count(self) -> int:
        """Chain instructions plus scalar writes (``end_chain`` markers
        excluded) — the size metric used for shrink reporting."""
        count = 0
        for item in _walk(self.program.items):
            if isinstance(item, SetScalar):
                count += 1
            else:
                count += len(item)
        return count


def _walk(items):
    for item in items:
        if isinstance(item, Loop):
            yield from _walk(item.body)
        else:
            yield item


class _GenState:
    """Constraint-tracking state threaded through generation."""

    def __init__(self, rng: np.random.Generator, config: NpuConfig,
                 profile: FuzzProfile):
        self.rng = rng
        self.config = config
        self.profile = profile
        self.rows = 1
        self.cols = 1
        n = config.native_dim
        self.dram_vec_count = 16
        self.dram_tile_count = 16
        #: MRF window the program initializes and mv_mul may address.
        self.mrf_window = min(12, config.mrf_address_space)
        self.netq_vectors = int(rng.integers(0, 12))
        self.netq_tiles = int(rng.integers(0, 8))
        self.netq_vec_left = self.netq_vectors
        self.netq_tile_left = self.netq_tiles
        self.native_dim = n

    def rand_values(self, shape) -> np.ndarray:
        """Random float32 values with a wide but finite dynamic range."""
        base = self.rng.standard_normal(shape)
        scale = np.exp2(self.rng.integers(-4, 5, size=shape).astype(
            np.float64))
        return (base * scale).astype(np.float32)


def generate_case(seed: int, profile: Optional[FuzzProfile] = None,
                  config: Optional[NpuConfig] = None) -> ProgramCase:
    """Generate one deterministic, well-formed fuzz case for ``seed``."""
    profile = profile or PROFILES["default"]
    rng = np.random.default_rng(seed)
    if config is None:
        names = (list(profile.config_pool) if profile.config_pool
                 else sorted(FUZZ_CONFIGS))
        config = FUZZ_CONFIGS[names[int(rng.integers(len(names)))]]
    state = _GenState(rng, config, profile)

    events: List[object] = []
    _emit_mrf_init(state, events)
    n_events = int(rng.integers(profile.min_events,
                                profile.max_events + 1))
    weights = np.array([profile.w_scalar_write, profile.w_matrix_chain,
                        profile.w_vector_chain], dtype=np.float64)
    weights /= weights.sum()
    for _ in range(n_events):
        kind = rng.choice(3, p=weights)
        if kind == 0:
            _emit_scalar_write(state, events)
        elif kind == 1:
            _emit_matrix_chain(state, events)
        else:
            _emit_vector_chain(state, events)

    items = _fold_loops(state, events)
    program = NpuProgram(tuple(items), name=f"fuzz-{seed}")
    depths = {MemId.InitialVrf: config.initial_vrf_depth,
              MemId.AddSubVrf: config.addsub_vrf_depth,
              MemId.MultiplyVrf: config.multiply_vrf_depth}
    return ProgramCase(
        config=config,
        program=program,
        vrf_init={mem: state.rand_values((depth, config.native_dim))
                  for mem, depth in depths.items()},
        dram_vectors=state.rand_values(
            (state.dram_vec_count, config.native_dim)),
        dram_tiles=state.rand_values(
            (state.dram_tile_count, config.native_dim, config.native_dim)),
        netq_vectors=state.rand_values(
            (state.netq_vectors, config.native_dim)),
        netq_tiles=state.rand_values(
            (state.netq_tiles, config.native_dim, config.native_dim)),
        note=f"seed={seed} profile={profile.name} config={config.name}",
    )


# -- event emitters --------------------------------------------------------

def _emit_mrf_init(state: _GenState, events: List[object]) -> None:
    """Program prologue: initialize the MRF window via matrix chains so
    ``mv_mul`` reads quantized-on-write weights, exercising m_rd/m_wr."""
    rng = state.rng
    window = state.mrf_window
    rows = int(rng.integers(1, 4))
    cols = max(1, window // rows // 2)
    if rows != state.rows:
        events.append(SetScalar(ScalarReg.Rows, rows))
        state.rows = rows
    if cols != state.cols:
        events.append(SetScalar(ScalarReg.Columns, cols))
        state.cols = cols
    count = rows * cols
    filled = 0
    while filled < window:
        count = min(count, window - filled)
        if count != state.rows * state.cols:
            # Trailing partial group: drop to single-tile moves.
            if state.rows != 1:
                events.append(SetScalar(ScalarReg.Rows, 1))
                state.rows = 1
            if state.cols != 1:
                events.append(SetScalar(ScalarReg.Columns, 1))
                state.cols = 1
            count = 1
        src = int(rng.integers(0, state.dram_tile_count - count + 1))
        events.append(InstructionChain([
            ins.m_rd(MemId.Dram, src),
            ins.m_wr(MemId.MatrixRf, filled)]))
        filled += count


def _emit_scalar_write(state: _GenState, events: List[object]) -> None:
    rng = state.rng
    reg = ScalarReg(int(rng.choice(
        [ScalarReg.Rows, ScalarReg.Columns, ScalarReg.Iterations],
        p=[0.45, 0.45, 0.1])))
    if reg is ScalarReg.Iterations:
        value = int(rng.integers(0, 16))
    else:
        value = int(rng.integers(1, state.profile.max_dim + 1))
        if reg is ScalarReg.Rows:
            state.rows = value
        else:
            state.cols = value
    events.append(SetScalar(reg, value))


def _emit_matrix_chain(state: _GenState, events: List[object]) -> None:
    rng = state.rng
    count = state.rows * state.cols
    if count > state.dram_tile_count:
        return  # current mega-SIMD group too large for the tile region
    sources = [MemId.Dram]
    if state.netq_tile_left >= count:
        sources.append(MemId.NetQ)
    src = sources[int(rng.integers(len(sources)))]
    if src is MemId.NetQ and rng.random() < state.profile.p_netq:
        state.netq_tile_left -= count
        rd = ins.m_rd(MemId.NetQ)
    else:
        rd = ins.m_rd(MemId.Dram, int(rng.integers(
            0, state.dram_tile_count - count + 1)))
    if rng.random() < 0.7 and count <= state.config.mrf_address_space:
        wr = ins.m_wr(MemId.MatrixRf, int(rng.integers(
            0, state.config.mrf_address_space - count + 1)))
    else:
        wr = ins.m_wr(MemId.Dram, int(rng.integers(
            0, state.dram_tile_count - count + 1)))
    events.append(InstructionChain([rd, wr]))


def _emit_vector_chain(state: _GenState, events: List[object]) -> None:
    rng = state.rng
    profile = state.profile
    rows, cols = state.rows, state.cols
    has_mvm = (rng.random() < profile.p_mv_mul
               and rows * cols <= state.mrf_window)
    width_in = cols if has_mvm else rows

    instrs: List[object] = [_head_read(state, width_in)]
    if has_mvm:
        base = int(rng.integers(0, state.mrf_window - rows * cols + 1))
        instrs.append(ins.mv_mul(base))
    instrs.extend(_pointwise_run(state))
    instrs.append(_terminal_write(state, rows))
    if rng.random() < profile.p_multicast:
        instrs.append(_terminal_write(state, rows))
    events.append(InstructionChain(instrs))


def _head_read(state: _GenState, width_in: int):
    rng = state.rng
    sources = [MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf,
               MemId.Dram]
    if (state.netq_vec_left >= width_in
            and rng.random() < state.profile.p_netq):
        state.netq_vec_left -= width_in
        return ins.v_rd(MemId.NetQ)
    mem = sources[int(rng.integers(len(sources)))]
    limit = (state.dram_vec_count if mem is MemId.Dram
             else _vrf_depth(state.config, mem))
    if width_in > limit:
        mem = MemId.InitialVrf
        limit = state.config.initial_vrf_depth
    return ins.v_rd(mem, int(rng.integers(0, limit - width_in + 1)))


def _pointwise_run(state: _GenState) -> List[object]:
    """Sample point-wise ops under the MFU routing capacity (greedy
    placement mirroring ``InstructionChain.assign_function_units``)."""
    rng = state.rng
    profile = state.profile
    weights = np.asarray(profile.pointwise_weights, dtype=np.float64)
    weights = weights / weights.sum()
    target = rng.poisson(profile.mean_pointwise)
    ops: List[object] = []
    mfu, used = 0, set()
    for _ in range(target):
        op = _POINTWISE[int(rng.choice(len(_POINTWISE), p=weights))]
        category = _FU_OF[op]
        trial_mfu, trial_used = mfu, set(used)
        while category in trial_used:
            trial_mfu += 1
            trial_used = set()
        if trial_mfu >= state.config.mfus:
            break
        mfu, used = trial_mfu, trial_used
        used.add(category)
        if op in (Opcode.V_RELU, Opcode.V_SIGM, Opcode.V_TANH):
            ops.append(ins.Instruction(op))
        else:
            mem_depth = (state.config.multiply_vrf_depth
                         if op is Opcode.VV_MUL
                         else state.config.addsub_vrf_depth)
            index = int(rng.integers(0, mem_depth - state.rows + 1))
            ops.append(ins.Instruction(op, index))
    return ops


def _terminal_write(state: _GenState, rows: int):
    rng = state.rng
    if rng.random() < state.profile.p_netq:
        return ins.v_wr(MemId.NetQ)
    targets = [MemId.InitialVrf, MemId.AddSubVrf, MemId.MultiplyVrf,
               MemId.Dram]
    mem = targets[int(rng.integers(len(targets)))]
    limit = (state.dram_vec_count if mem is MemId.Dram
             else _vrf_depth(state.config, mem))
    if rows > limit:
        mem = MemId.InitialVrf
        limit = state.config.initial_vrf_depth
    return ins.v_wr(mem, int(rng.integers(0, limit - rows + 1)))


def _vrf_depth(config: NpuConfig, mem: MemId) -> int:
    return {MemId.InitialVrf: config.initial_vrf_depth,
            MemId.AddSubVrf: config.addsub_vrf_depth,
            MemId.MultiplyVrf: config.multiply_vrf_depth}[mem]


def _fold_loops(state: _GenState, events: List[object]) -> List[object]:
    """Fold eligible spans of the flat event list into counted loops.

    A span is loopable only if it contains no network-queue reads (the
    queue balance would change across iterations) and no scalar writes
    (the first iteration would otherwise run under different
    ``rows``/``columns`` than later ones).
    """
    rng = state.rng
    if len(events) < 2 or rng.random() < 0.4:
        return events
    attempts = int(rng.integers(1, 3))
    items = list(events)
    for _ in range(attempts):
        if len(items) < 2:
            break
        start = int(rng.integers(0, len(items) - 1))
        length = int(rng.integers(1, min(4, len(items) - start) + 1))
        span = items[start:start + length]
        if not all(_loopable(item) for item in span):
            continue
        count = int(rng.integers(2, 4))
        items[start:start + length] = [Loop(count, tuple(span))]
    return items


def _loopable(item) -> bool:
    if isinstance(item, (SetScalar, Loop)):
        return False
    head = item.instructions[0]
    return head.mem_id is not MemId.NetQ
