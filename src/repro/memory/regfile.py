"""Register files: the independently addressable on-chip memories.

The BW NPU pins model state in distributed SRAM (Section V-A): vector
register files (VRFs) hold native vectors; the matrix register file (MRF)
holds native N x N weight tiles, banked per tile engine and sub-banked per
row so every multiplier has a dedicated read port. The functional
simulator uses these classes for architectural state; the banking
structure is exposed for the timing model and tests.
"""

from __future__ import annotations


import numpy as np

from ..errors import MemoryError_


class VectorRegisterFile:
    """A register file of ``depth`` native vectors of length ``native_dim``."""

    def __init__(self, name: str, depth: int, native_dim: int):
        if depth <= 0 or native_dim <= 0:
            raise MemoryError_("depth and native_dim must be positive")
        self.name = name
        self.depth = depth
        self.native_dim = native_dim
        self._data = np.zeros((depth, native_dim), dtype=np.float32)
        self.reads = 0
        self.writes = 0

    def _check(self, index: int, count: int) -> None:
        if count <= 0:
            raise MemoryError_(f"{self.name}: count must be positive")
        if index < 0 or index + count > self.depth:
            raise MemoryError_(
                f"{self.name}: access [{index}, {index + count}) out of "
                f"range (depth {self.depth})")

    def read(self, index: int, count: int = 1) -> np.ndarray:
        """Read ``count`` consecutive vectors; returns shape (count, N)."""
        self._check(index, count)
        self.reads += count
        return self._data[index:index + count].copy()

    def write(self, index: int, vectors: np.ndarray) -> None:
        """Write one or more consecutive vectors starting at ``index``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.native_dim:
            raise MemoryError_(
                f"{self.name}: vector length {vectors.shape[1]} != native "
                f"dimension {self.native_dim}")
        count = vectors.shape[0]
        self._check(index, count)
        self.writes += count
        self._data[index:index + count] = vectors

    def clear(self) -> None:
        self._data.fill(0.0)

    @property
    def capacity_bytes(self) -> int:
        return self._data.nbytes


class MatrixRegisterFile:
    """The MRF: ``capacity`` native N x N tiles of model weights.

    Section V-A: the MRF is banked by native tiles across tile engines and
    sub-banked by rows; :meth:`bank_of` and :meth:`subbank_of` expose that
    geometry for the timing model and for tests of the port-scaling
    property (one SRAM read port per multiplier).
    """

    def __init__(self, name: str, capacity: int, native_dim: int,
                 tile_engines: int = 1):
        if capacity <= 0 or native_dim <= 0 or tile_engines <= 0:
            raise MemoryError_(
                "capacity, native_dim and tile_engines must be positive")
        self.name = name
        self.capacity = capacity
        self.native_dim = native_dim
        self.tile_engines = tile_engines
        self._tiles = np.zeros((capacity, native_dim, native_dim),
                               dtype=np.float32)
        self.reads = 0
        self.writes = 0

    def _check(self, index: int, count: int = 1) -> None:
        if count <= 0:
            raise MemoryError_(f"{self.name}: count must be positive")
        if index < 0 or index + count > self.capacity:
            raise MemoryError_(
                f"{self.name}: tile access [{index}, {index + count}) out "
                f"of range (capacity {self.capacity})")

    def read_tile(self, index: int) -> np.ndarray:
        self._check(index)
        self.reads += 1
        return self._tiles[index].copy()

    def read_tiles(self, index: int, count: int) -> np.ndarray:
        self._check(index, count)
        self.reads += count
        return self._tiles[index:index + count].copy()

    def write_tile(self, index: int, tile: np.ndarray) -> None:
        tile = np.asarray(tile, dtype=np.float32)
        if tile.shape != (self.native_dim, self.native_dim):
            raise MemoryError_(
                f"{self.name}: tile shape {tile.shape} != "
                f"({self.native_dim}, {self.native_dim})")
        self._check(index)
        self.writes += 1
        self._tiles[index] = tile

    def write_tiles(self, index: int, tiles: np.ndarray) -> None:
        tiles = np.asarray(tiles, dtype=np.float32)
        if tiles.ndim != 3 or tiles.shape[1:] != (self.native_dim,
                                                  self.native_dim):
            raise MemoryError_(f"{self.name}: bad tile group shape "
                               f"{tiles.shape}")
        self._check(index, tiles.shape[0])
        self.writes += tiles.shape[0]
        self._tiles[index:index + tiles.shape[0]] = tiles

    def bank_of(self, index: int) -> int:
        """Tile-engine bank holding tile ``index`` (round-robin banking)."""
        self._check(index)
        return index % self.tile_engines

    def subbank_of(self, index: int, row: int) -> int:
        """Row sub-bank: row ``row`` of every tile lives in sub-bank
        ``row`` of its bank (feeding dot-product engine ``row``)."""
        self._check(index)
        if not 0 <= row < self.native_dim:
            raise MemoryError_(f"{self.name}: row {row} out of range")
        return row

    def read_ports(self, lanes: int) -> int:
        """Total dedicated SRAM read ports: one per multiplier."""
        return self.tile_engines * self.native_dim * lanes

    def clear(self) -> None:
        self._tiles.fill(0.0)

    @property
    def capacity_bytes(self) -> int:
        return self._tiles.nbytes
