"""Register files: the independently addressable on-chip memories.

The BW NPU pins model state in distributed SRAM (Section V-A): vector
register files (VRFs) hold native vectors; the matrix register file (MRF)
holds native N x N weight tiles, banked per tile engine and sub-banked per
row so every multiplier has a dedicated read port. The functional
simulator uses these classes for architectural state; the banking
structure is exposed for the timing model and tests.
"""

from __future__ import annotations

import collections
from typing import Dict, Tuple

import numpy as np

from ..errors import MemoryError_

#: Assembled windows kept per MRF (enough for every weight matrix of the
#: largest lowered model; evicted least-recently-used beyond this).
_WINDOW_CACHE_SLOTS = 64


class VectorRegisterFile:
    """A register file of ``depth`` native vectors of length ``native_dim``."""

    def __init__(self, name: str, depth: int, native_dim: int):
        if depth <= 0 or native_dim <= 0:
            raise MemoryError_("depth and native_dim must be positive")
        self.name = name
        self.depth = depth
        self.native_dim = native_dim
        self._data = np.zeros((depth, native_dim), dtype=np.float32)
        self.reads = 0
        self.writes = 0

    def _check(self, index: int, count: int) -> None:
        if count <= 0:
            raise MemoryError_(f"{self.name}: count must be positive")
        if index < 0 or index + count > self.depth:
            raise MemoryError_(
                f"{self.name}: access [{index}, {index + count}) out of "
                f"range (depth {self.depth})")

    def read(self, index: int, count: int = 1,
             copy: bool = True) -> np.ndarray:
        """Read ``count`` consecutive vectors; returns shape (count, N).

        ``copy=False`` returns a read-only-by-convention view into the
        register file — the fast path for internal callers that consume
        the data immediately (the executor's operand reads). The public
        API keeps the defensive copy.
        """
        self._check(index, count)
        self.reads += count
        data = self._data[index:index + count]
        return data.copy() if copy else data

    def write(self, index: int, vectors: np.ndarray) -> None:
        """Write one or more consecutive vectors starting at ``index``."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.native_dim:
            raise MemoryError_(
                f"{self.name}: vector length {vectors.shape[1]} != native "
                f"dimension {self.native_dim}")
        count = vectors.shape[0]
        self._check(index, count)
        self.writes += count
        self._data[index:index + count] = vectors

    def clear(self) -> None:
        self._data.fill(0.0)

    @property
    def capacity_bytes(self) -> int:
        return self._data.nbytes


class MatrixRegisterFile:
    """The MRF: ``capacity`` native N x N tiles of model weights.

    Section V-A: the MRF is banked by native tiles across tile engines and
    sub-banked by rows; :meth:`bank_of` and :meth:`subbank_of` expose that
    geometry for the timing model and for tests of the port-scaling
    property (one SRAM read port per multiplier).

    :meth:`read_window` assembles the tiles of a mega-SIMD window into one
    block matrix with pure reshape/transpose (no Python tile loop) and
    caches the result; :attr:`generation` increments on every write, so a
    cached window is valid exactly while its generation matches.
    """

    def __init__(self, name: str, capacity: int, native_dim: int,
                 tile_engines: int = 1):
        if capacity <= 0 or native_dim <= 0 or tile_engines <= 0:
            raise MemoryError_(
                "capacity, native_dim and tile_engines must be positive")
        self.name = name
        self.capacity = capacity
        self.native_dim = native_dim
        self.tile_engines = tile_engines
        self._tiles = np.zeros((capacity, native_dim, native_dim),
                               dtype=np.float32)
        self.reads = 0
        self.writes = 0
        #: Bumped on every tile write; invalidates cached windows.
        self.generation = 0
        self._windows: "collections.OrderedDict[Tuple[int, int, int], Tuple[int, np.ndarray]]" = \
            collections.OrderedDict()

    def _check(self, index: int, count: int = 1) -> None:
        if count <= 0:
            raise MemoryError_(f"{self.name}: count must be positive")
        if index < 0 or index + count > self.capacity:
            raise MemoryError_(
                f"{self.name}: tile access [{index}, {index + count}) out "
                f"of range (capacity {self.capacity})")

    def read_tile(self, index: int) -> np.ndarray:
        self._check(index)
        self.reads += 1
        return self._tiles[index].copy()

    def read_tiles(self, index: int, count: int,
                   copy: bool = True) -> np.ndarray:
        self._check(index, count)
        self.reads += count
        data = self._tiles[index:index + count]
        return data.copy() if copy else data

    def read_window(self, base: int, rows: int, cols: int) -> np.ndarray:
        """Assembled mega-SIMD weight window: a (rows*N, cols*N) matrix.

        Tile ``(r, c)`` of the window is MRF slot ``base + r*cols + c``
        (``mv_mul``'s row-major layout). The block matrix is built once
        with a reshape/transpose and cached; any tile write invalidates
        via :attr:`generation`. Every call still counts ``rows*cols``
        tile reads — the hardware reads the SRAM each issue, and the
        naive per-tile path must see identical statistics.

        The returned array is shared with the cache: callers must not
        mutate it.
        """
        count = rows * cols
        self._check(base, count)
        self.reads += count
        key = (base, rows, cols)
        cached = self._windows.get(key)
        if cached is not None and cached[0] == self.generation:
            self._windows.move_to_end(key)
            return cached[1]
        n = self.native_dim
        window = (self._tiles[base:base + count]
                  .reshape(rows, cols, n, n)
                  .transpose(0, 2, 1, 3)
                  .reshape(rows * n, cols * n))
        self._windows[key] = (self.generation, window)
        self._windows.move_to_end(key)
        while len(self._windows) > _WINDOW_CACHE_SLOTS:
            self._windows.popitem(last=False)
        return window

    def write_tile(self, index: int, tile: np.ndarray) -> None:
        tile = np.asarray(tile, dtype=np.float32)
        if tile.shape != (self.native_dim, self.native_dim):
            raise MemoryError_(
                f"{self.name}: tile shape {tile.shape} != "
                f"({self.native_dim}, {self.native_dim})")
        self._check(index)
        self.writes += 1
        self.generation += 1
        self._tiles[index] = tile

    def write_tiles(self, index: int, tiles: np.ndarray) -> None:
        tiles = np.asarray(tiles, dtype=np.float32)
        if tiles.ndim != 3 or tiles.shape[1:] != (self.native_dim,
                                                  self.native_dim):
            raise MemoryError_(f"{self.name}: bad tile group shape "
                               f"{tiles.shape}")
        self._check(index, tiles.shape[0])
        self.writes += tiles.shape[0]
        self.generation += 1
        self._tiles[index:index + tiles.shape[0]] = tiles

    def bank_of(self, index: int) -> int:
        """Tile-engine bank holding tile ``index`` (round-robin banking)."""
        self._check(index)
        return index % self.tile_engines

    def subbank_of(self, index: int, row: int) -> int:
        """Row sub-bank: row ``row`` of every tile lives in sub-bank
        ``row`` of its bank (feeding dot-product engine ``row``)."""
        self._check(index)
        if not 0 <= row < self.native_dim:
            raise MemoryError_(f"{self.name}: row {row} out of range")
        return row

    def read_ports(self, lanes: int) -> int:
        """Total dedicated SRAM read ports: one per multiplier."""
        return self.tile_engines * self.native_dim * lanes

    def clear(self) -> None:
        self.generation += 1
        self._windows.clear()
        self._tiles.fill(0.0)

    @property
    def capacity_bytes(self) -> int:
        return self._tiles.nbytes
