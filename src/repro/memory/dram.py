"""Off-chip DRAM model.

The FPGA's local DRAM holds vectors and matrix tiles that do not fit (or
are not pinned) on chip — used by CNN-specialized instances to stream
weights, overlapping transfer with compute (Section V-A). The model
provides two sparse address spaces (vectors and tiles) with byte-traffic
accounting so the timing model can charge bandwidth.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import MemoryError_


class Dram:
    """Sparse DRAM with separate vector and matrix-tile address spaces."""

    def __init__(self, native_dim: int,
                 bandwidth_gbps: float = 76.8,
                 capacity_bytes: Optional[int] = None):
        """
        Args:
            native_dim: Native vector dimension (element counts per entry).
            bandwidth_gbps: Peak bandwidth in GB/s (default: four DDR4-2400
                channels as on the Catapult-style boards).
            capacity_bytes: Optional capacity cap; ``None`` = unbounded.
        """
        self.native_dim = native_dim
        self.bandwidth_gbps = bandwidth_gbps
        self.capacity_bytes = capacity_bytes
        self._vectors: Dict[int, np.ndarray] = {}
        self._tiles: Dict[int, np.ndarray] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    def _charge_write(self, nbytes: int) -> None:
        if self.capacity_bytes is not None:
            used = self.used_bytes + nbytes
            if used > self.capacity_bytes:
                raise MemoryError_(
                    f"DRAM capacity exceeded: {used} > {self.capacity_bytes}")
        self.bytes_written += nbytes

    @property
    def used_bytes(self) -> int:
        return (sum(v.nbytes for v in self._vectors.values())
                + sum(t.nbytes for t in self._tiles.values()))

    # -- vectors ---------------------------------------------------------

    def read_vectors(self, index: int, count: int = 1) -> np.ndarray:
        out = np.zeros((count, self.native_dim), dtype=np.float32)
        for i in range(count):
            if index + i not in self._vectors:
                raise MemoryError_(f"DRAM vector {index + i} never written")
            out[i] = self._vectors[index + i]
        self.bytes_read += out.nbytes
        return out

    def write_vectors(self, index: int, vectors: np.ndarray) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.native_dim:
            raise MemoryError_(
                f"DRAM vector length {vectors.shape[1]} != native "
                f"dimension {self.native_dim}")
        self._charge_write(vectors.nbytes)
        for i, vec in enumerate(vectors):
            self._vectors[index + i] = vec.copy()

    # -- matrix tiles ------------------------------------------------------

    def read_tiles(self, index: int, count: int = 1) -> np.ndarray:
        n = self.native_dim
        out = np.zeros((count, n, n), dtype=np.float32)
        for i in range(count):
            if index + i not in self._tiles:
                raise MemoryError_(f"DRAM tile {index + i} never written")
            out[i] = self._tiles[index + i]
        self.bytes_read += out.nbytes
        return out

    def write_tiles(self, index: int, tiles: np.ndarray) -> None:
        n = self.native_dim
        tiles = np.asarray(tiles, dtype=np.float32)
        if tiles.ndim == 2:
            tiles = tiles[np.newaxis]
        if tiles.shape[1:] != (n, n):
            raise MemoryError_(f"DRAM tile shape {tiles.shape[1:]} != "
                               f"({n}, {n})")
        self._charge_write(tiles.nbytes)
        for i, tile in enumerate(tiles):
            self._tiles[index + i] = tile.copy()

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` at peak bandwidth."""
        return nbytes / (self.bandwidth_gbps * 1e9)
