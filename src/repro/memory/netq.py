"""Network I/O queues.

BW FPGAs sit directly on the datacenter network (Section II-A); DNN
requests arrive as vector streams on an input queue and results leave on
an output queue. Matrices can also arrive over the network for MRF
initialization (Table II: ``m_rd`` from NetQ).
"""

from __future__ import annotations

import collections
from typing import Deque, List

import numpy as np

from ..errors import MemoryError_, NetworkQueueEmptyError


class NetworkQueues:
    """Input/output vector queues plus an input matrix-tile queue."""

    def __init__(self, native_dim: int):
        self.native_dim = native_dim
        self._in_vectors: Deque[np.ndarray] = collections.deque()
        self._in_tiles: Deque[np.ndarray] = collections.deque()
        self._out_vectors: List[np.ndarray] = []
        self.vectors_received = 0
        self.vectors_sent = 0

    # -- host side -------------------------------------------------------

    def push_input(self, vector: np.ndarray) -> None:
        """Host/network delivers one native vector to the NPU."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape[0] != self.native_dim:
            raise MemoryError_(
                f"NetQ vector length {vector.shape[0]} != native dimension "
                f"{self.native_dim}")
        self._in_vectors.append(vector.copy())

    def push_input_tiles(self, tiles: np.ndarray) -> None:
        """Host/network delivers matrix tiles for MRF initialization."""
        tiles = np.asarray(tiles, dtype=np.float32)
        if tiles.ndim == 2:
            tiles = tiles[np.newaxis]
        if tiles.shape[1:] != (self.native_dim, self.native_dim):
            raise MemoryError_(f"NetQ tile shape {tiles.shape[1:]} invalid")
        for tile in tiles:
            self._in_tiles.append(tile.copy())

    def pop_outputs(self) -> List[np.ndarray]:
        """Drain all vectors the NPU has sent to the network."""
        out, self._out_vectors = self._out_vectors, []
        return out

    @property
    def pending_inputs(self) -> int:
        return len(self._in_vectors)

    @property
    def pending_outputs(self) -> int:
        return len(self._out_vectors)

    # -- NPU side ----------------------------------------------------------

    def pop_input(self, count: int = 1) -> np.ndarray:
        """NPU reads ``count`` vectors from the network (``v_rd NetQ``)."""
        if len(self._in_vectors) < count:
            raise NetworkQueueEmptyError(
                f"v_rd(NetQ) needs {count} vector(s), only "
                f"{len(self._in_vectors)} pending")
        out = np.stack([self._in_vectors.popleft() for _ in range(count)])
        self.vectors_received += count
        return out

    def pop_input_tiles(self, count: int) -> np.ndarray:
        """NPU reads ``count`` matrix tiles (``m_rd NetQ``)."""
        if len(self._in_tiles) < count:
            raise NetworkQueueEmptyError(
                f"m_rd(NetQ) needs {count} tile(s), only "
                f"{len(self._in_tiles)} pending")
        return np.stack([self._in_tiles.popleft() for _ in range(count)])

    def push_output(self, vectors: np.ndarray) -> None:
        """NPU sends vectors to the network (``v_wr NetQ``)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.native_dim:
            raise MemoryError_(
                f"NetQ output vector length {vectors.shape[1]} != native "
                f"dimension {self.native_dim}")
        for vec in vectors:
            self._out_vectors.append(vec.copy())
        self.vectors_sent += vectors.shape[0]
