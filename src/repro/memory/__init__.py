"""On-chip and off-chip memory structures of the BW NPU."""

from .regfile import MatrixRegisterFile, VectorRegisterFile
from .dram import Dram
from .netq import NetworkQueues

__all__ = ["MatrixRegisterFile", "VectorRegisterFile", "Dram",
           "NetworkQueues"]
