"""Block floating-point (BFP) numerics (paper Section VI).

The BW NPU uses a narrow-precision block floating-point format that shares
a 5-bit exponent across a group of numbers at the native vector level —
"a single 5-bit exponent per 128 independent signs and mantissas". Only
dot products see BFP quantization noise; secondary point-wise operations
execute as float16.

:class:`BfpFormat` describes one format instance (``1s.5e.2m`` in the
paper's notation); :func:`quantize` rounds an array to the format,
returning exactly-representable float32 values so the rest of the
simulator can use ordinary numpy arithmetic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from ..errors import ConfigError


@dataclasses.dataclass(frozen=True)
class BfpFormat:
    """A block floating-point format: 1 sign, shared exponent, mantissa.

    Attributes:
        mantissa_bits: Magnitude bits per element (2-5 in the paper).
        exponent_bits: Width of the shared exponent field.
        block_size: Elements sharing one exponent (the native dimension).
    """

    mantissa_bits: int
    exponent_bits: int = 5
    block_size: int = 128

    def __post_init__(self) -> None:
        if self.mantissa_bits < 1:
            raise ConfigError("mantissa_bits must be >= 1")
        if self.exponent_bits < 2:
            raise ConfigError("exponent_bits must be >= 2")
        if self.block_size < 1:
            raise ConfigError("block_size must be >= 1")

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_exponent(self) -> int:
        return -self.exponent_bias

    @property
    def max_exponent(self) -> int:
        return (1 << self.exponent_bits) - 1 - self.exponent_bias

    @property
    def max_mantissa(self) -> int:
        return (1 << self.mantissa_bits) - 1

    @property
    def bits_per_element(self) -> float:
        """Average storage cost per element, amortizing the exponent."""
        return 1 + self.mantissa_bits + self.exponent_bits / self.block_size

    @property
    def name(self) -> str:
        return f"1s.{self.exponent_bits}e.{self.mantissa_bits}m"

    def __str__(self) -> str:
        return self.name


def _block_view(x: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape the trailing axis into blocks; the length must divide."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] % block_size != 0:
        raise ValueError(
            f"last axis ({x.shape[-1]}) must be a multiple of the block "
            f"size ({block_size}); pad to the native dimension first")
    return x.reshape(x.shape[:-1] + (x.shape[-1] // block_size, block_size))


def block_exponents(x: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Shared exponent chosen for each block of ``x``.

    The exponent is ``floor(log2(max |x|))`` clamped to the format's
    exponent range; all-zero blocks use the minimum exponent.
    """
    blocks = _block_view(x, fmt.block_size)
    amax = np.max(np.abs(blocks), axis=-1)
    with np.errstate(divide="ignore"):
        exponents = np.floor(np.log2(amax, where=amax > 0,
                                     out=np.full_like(amax, -np.inf)))
    exponents = np.where(amax > 0, exponents, fmt.min_exponent)
    return np.clip(exponents, fmt.min_exponent, fmt.max_exponent).astype(int)


def quantize_with_info(
        x: np.ndarray, fmt: BfpFormat) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``x`` to BFP, returning (values, mantissas, exponents).

    ``values`` are the dequantized float32 numbers (exactly representable),
    ``mantissas`` the signed integer mantissas, and ``exponents`` the
    per-block shared exponents.
    """
    original_shape = np.asarray(x).shape
    blocks = _block_view(x, fmt.block_size)
    exponents = block_exponents(x, fmt)
    # Element scale: value = mantissa * 2^(E - mantissa_bits + 1).
    scale = np.exp2(exponents - fmt.mantissa_bits + 1)[..., np.newaxis]
    mantissas = np.rint(blocks / scale)
    mantissas = np.clip(mantissas, -fmt.max_mantissa, fmt.max_mantissa)
    values = (mantissas * scale).reshape(original_shape).astype(np.float32)
    return values, mantissas.astype(np.int64).reshape(original_shape), exponents


def quantize(x: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Quantize ``x`` to BFP and return the dequantized float32 array."""
    values, _, _ = quantize_with_info(x, fmt)
    return values


def quantization_step(fmt: BfpFormat, exponent: int) -> float:
    """The representable spacing for a block with the given exponent."""
    return math.ldexp(1.0, exponent - fmt.mantissa_bits + 1)


def bfp_dot(a: np.ndarray, b: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Dot product with both operands quantized to ``fmt``.

    Models the MVM datapath: operands are BFP-quantized, products and the
    accumulation tree are exact (integer mantissa arithmetic in hardware;
    float64 here), and the result is delivered to the vector pipeline as
    float16 — the paper's "secondary operations still execute as float16".
    """
    qa = quantize(a, fmt).astype(np.float64)
    qb = quantize(b, fmt).astype(np.float64)
    return np.float16(qa @ qb)


def to_float16(x: np.ndarray) -> np.ndarray:
    """Round to float16 and return as float32 (the pipeline word type)."""
    return np.asarray(x, dtype=np.float16).astype(np.float32)


#: The RNN production format used by BW_S10 (Table IV).
MSFP_RNN = BfpFormat(mantissa_bits=2, exponent_bits=5, block_size=128)

#: The CNN format used by BW_CNN_A10 (Table VI).
MSFP_CNN = BfpFormat(mantissa_bits=5, exponent_bits=5, block_size=128)
