"""Block floating-point (BFP) numerics (paper Section VI).

The BW NPU uses a narrow-precision block floating-point format that shares
a 5-bit exponent across a group of numbers at the native vector level —
"a single 5-bit exponent per 128 independent signs and mantissas". Only
dot products see BFP quantization noise; secondary point-wise operations
execute as float16.

:class:`BfpFormat` describes one format instance (``1s.5e.2m`` in the
paper's notation); :func:`quantize` rounds an array to the format,
returning exactly-representable float32 values so the rest of the
simulator can use ordinary numpy arithmetic.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError


@dataclasses.dataclass(frozen=True)
class BfpFormat:
    """A block floating-point format: 1 sign, shared exponent, mantissa.

    One member of the configurable format family. The paper's MSFP
    formats share a raw exponent per native block of 128; Microscaling
    (MX) descendants share an E8M0 power-of-two scale per block of 32.

    Attributes:
        mantissa_bits: Magnitude bits per element (2-5 in the paper).
        exponent_bits: Width of the shared exponent field.
        block_size: Elements sharing one exponent. The paper shares at
            the native dimension (128); MX formats use 32.
        scale_granularity: ``"block"`` shares one exponent per
            ``block_size`` elements; ``"tile"`` widens sharing to the
            whole trailing axis (one exponent per native row), the
            coarsest scaling the MVM datapath supports.
        scale_encoding: ``"shared"`` is the paper's raw exponent field;
            ``"e8m0"`` is the MX-compliant 8-bit power-of-two scale
            (bias 127, the all-ones code reserved for NaN, so the top
            exponent 128 is not encodable).
    """

    mantissa_bits: int
    exponent_bits: int = 5
    block_size: int = 128
    scale_granularity: str = "block"
    scale_encoding: str = "shared"

    def __post_init__(self) -> None:
        if not 1 <= self.mantissa_bits <= 12:
            raise ConfigError("mantissa_bits must be in [1, 12]")
        if not 2 <= self.exponent_bits <= 10:
            # Above 10 exponent bits, 2^max_exponent overflows float64
            # and the simulator's scale arithmetic stops being exact.
            raise ConfigError("exponent_bits must be in [2, 10]")
        if not 1 <= self.block_size <= 4096:
            raise ConfigError("block_size must be in [1, 4096]")
        if self.scale_granularity not in ("block", "tile"):
            raise ConfigError(
                "scale_granularity must be 'block' or 'tile', got "
                f"{self.scale_granularity!r}")
        if self.scale_encoding not in ("shared", "e8m0"):
            raise ConfigError(
                "scale_encoding must be 'shared' or 'e8m0', got "
                f"{self.scale_encoding!r}")
        if self.scale_encoding == "e8m0" and self.exponent_bits != 8:
            raise ConfigError(
                "e8m0 scales are 8-bit by definition; set exponent_bits=8")

    @property
    def is_e8m0(self) -> bool:
        return self.scale_encoding == "e8m0"

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_exponent(self) -> int:
        return -self.exponent_bias

    @property
    def max_exponent(self) -> int:
        # E8M0 reserves the all-ones code (0xFF) for NaN, losing the top
        # exponent the raw field would otherwise reach.
        top = (1 << self.exponent_bits) - 1 - self.exponent_bias
        return top - 1 if self.is_e8m0 else top

    @property
    def max_mantissa(self) -> int:
        return (1 << self.mantissa_bits) - 1

    def storage_bits_per_element(
            self, row_length: Optional[int] = None) -> float:
        """Average storage bits per element, amortizing the exponent.

        Per-tile scaling amortizes the exponent over the whole row when
        ``row_length`` is given; per-block scaling (and an unknown row
        length) amortizes over ``block_size``.
        """
        group = self.block_size
        if self.scale_granularity == "tile" and row_length:
            group = row_length
        return 1 + self.mantissa_bits + self.exponent_bits / group

    @property
    def bits_per_element(self) -> float:
        """Average storage cost per element, amortizing the exponent."""
        return self.storage_bits_per_element()

    def label(self, native_block: Optional[int] = None) -> str:
        """Paper-style spec string, e.g. ``1s.e8m0.7m.b32``.

        The block suffix is omitted when the block is the conventional
        native dimension (``native_block``, defaulting to the paper's
        128) — ``1s.5e.2m`` stays ``1s.5e.2m``.
        """
        scale = "e8m0" if self.is_e8m0 else f"{self.exponent_bits}e"
        parts = [f"1s.{scale}.{self.mantissa_bits}m"]
        if self.block_size != (native_block or 128):
            parts.append(f"b{self.block_size}")
        if self.scale_granularity == "tile":
            parts.append("tile")
        return ".".join(parts)

    @property
    def name(self) -> str:
        return self.label()

    def __str__(self) -> str:
        return self.name


def _block_view(x: np.ndarray, block_size: int) -> np.ndarray:
    """Reshape the trailing axis into blocks; the length must divide.

    Preserves float32 inputs (the simulator's word type); everything else
    is promoted to float64.
    """
    x = np.asarray(x)
    if x.dtype != np.float32:
        x = x.astype(np.float64)
    if x.shape[-1] % block_size != 0:
        raise ValueError(
            f"last axis ({x.shape[-1]}) must be a multiple of the block "
            f"size ({block_size}); pad to the native dimension first")
    return x.reshape(x.shape[:-1] + (x.shape[-1] // block_size, block_size))


def _exponents_of(blocks: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Clamped shared exponents for pre-blocked data (one per block).

    ``floor(log2(max |block|))`` computed exactly via ``frexp`` — for any
    finite float ``a = m * 2^e`` with ``0.5 <= |m| < 1``, the floor of its
    base-2 log is ``e - 1`` — avoiding a transcendental log per block.

    Per-tile granularity takes the maximum across all blocks of a row
    but keeps the per-block result shape (the shared exponent is
    broadcast into every block slot), so downstream consumers are
    layout-agnostic about granularity.
    """
    amax = np.max(np.abs(blocks), axis=-1)
    if fmt.scale_granularity == "tile":
        amax = np.broadcast_to(
            np.max(amax, axis=-1, keepdims=True), amax.shape)
    exponents = np.frexp(amax)[1] - 1
    exponents = np.where(amax > 0, exponents, fmt.min_exponent)
    return np.clip(exponents, fmt.min_exponent, fmt.max_exponent).astype(int)


def block_exponents(x: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Shared exponent chosen for each block of ``x``.

    The exponent is ``floor(log2(max |x|))`` clamped to the format's
    exponent range; all-zero blocks use the minimum exponent.
    """
    return _exponents_of(_block_view(x, fmt.block_size), fmt)


def quantize_with_info(
        x: np.ndarray, fmt: BfpFormat) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantize ``x`` to BFP, returning (values, mantissas, exponents).

    ``values`` are the dequantized float32 numbers (exactly representable),
    ``mantissas`` the signed integer mantissas, and ``exponents`` the
    per-block shared exponents. Blocking, exponent selection, and rounding
    happen in one pass over the block view, in the input's working
    precision: float32 arrays quantize without a float64 round-trip (all
    the intermediate steps — power-of-two scaling, rint, clip — are exact
    in either precision, so the results are bit-identical).
    """
    original_shape = np.asarray(x).shape
    blocks = _block_view(x, fmt.block_size)
    exponents = _exponents_of(blocks, fmt)
    # Element scale: value = mantissa * 2^(E - mantissa_bits + 1).
    scale = np.exp2((exponents - fmt.mantissa_bits + 1).astype(blocks.dtype)
                    )[..., np.newaxis]
    mantissas = np.rint(blocks / scale)
    np.clip(mantissas, -fmt.max_mantissa, fmt.max_mantissa, out=mantissas)
    values = (mantissas * scale).reshape(original_shape).astype(np.float32)
    return values, mantissas.astype(np.int64).reshape(original_shape), exponents


def decompose(x: np.ndarray, fmt: BfpFormat) -> Tuple[np.ndarray, np.ndarray]:
    """BFP decomposition without materializing the dequantized values.

    Returns ``(mantissas, exponents)`` where ``mantissas`` keeps the
    block view's working dtype (float32 for float32 input — exactly
    integer-valued, ready for the executor's mantissa-GEMV path) and
    ``exponents`` are the per-block shared exponents. The mantissa and
    exponent arithmetic is identical to :func:`quantize_with_info`; only
    the value reconstruction and int64 conversion are skipped.
    """
    original_shape = np.asarray(x).shape
    blocks = _block_view(x, fmt.block_size)
    exponents = _exponents_of(blocks, fmt)
    scale = np.exp2((exponents - fmt.mantissa_bits + 1).astype(blocks.dtype)
                    )[..., np.newaxis]
    mantissas = np.rint(blocks / scale)
    np.clip(mantissas, -fmt.max_mantissa, fmt.max_mantissa, out=mantissas)
    return mantissas.reshape(original_shape), exponents


def scales_of(exponents: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Per-block dequantization scales ``2^(E - mb + 1)`` as float64.

    The companion of :func:`decompose` for dot-product consumers:
    ``value = mantissa * scales_of(exponents, fmt)[..., None]``. Kept in
    one place so the vectorized executor and the compiled replay engine
    (:mod:`repro.functional.replay`) apply the bit-identical formula.
    """
    return np.exp2((exponents - fmt.mantissa_bits + 1).astype(np.float64))


def quantize_reference(x: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Pure-python reference quantizer (the conformance oracle).

    Computes the same mapping as :func:`quantize` one block at a time
    with scalar :mod:`math` arithmetic — shared exponent from
    ``math.frexp`` of the block maximum (or the row maximum under
    per-tile granularity), mantissas via round-half-even (python's
    ``round``, matching ``np.rint``), clamp to the mantissa range —
    sharing no code with the vectorized implementation. Used by
    :mod:`repro.verify` to cross-check the production path bit for bit.
    """
    arr = np.asarray(x)
    shaped = arr.reshape(-1, arr.shape[-1]) if arr.ndim else arr.reshape(1, 1)
    if shaped.shape[-1] % fmt.block_size != 0:
        raise ValueError(
            f"last axis ({shaped.shape[-1]}) must be a multiple of the "
            f"block size ({fmt.block_size}); pad to the native dimension "
            "first")
    out = np.zeros(shaped.shape, dtype=np.float32)
    for r in range(shaped.shape[0]):
        row_amax = max(abs(float(v)) for v in shaped[r])
        for b in range(shaped.shape[1] // fmt.block_size):
            lo, hi = b * fmt.block_size, (b + 1) * fmt.block_size
            block = [float(v) for v in shaped[r, lo:hi]]
            if fmt.scale_granularity == "tile":
                amax = row_amax
            else:
                amax = max(abs(v) for v in block)
            if amax > 0:
                exponent = math.frexp(amax)[1] - 1
            else:
                exponent = fmt.min_exponent
            exponent = min(max(exponent, fmt.min_exponent),
                           fmt.max_exponent)
            step = math.ldexp(1.0, exponent - fmt.mantissa_bits + 1)
            for j, v in enumerate(block):
                mant = round(v / step)
                mant = min(max(mant, -fmt.max_mantissa), fmt.max_mantissa)
                out[r, lo + j] = np.float32(mant * step)
    return out.reshape(arr.shape)


def quantize(x: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Quantize ``x`` to BFP and return the dequantized float32 array."""
    original_shape = np.asarray(x).shape
    blocks = _block_view(x, fmt.block_size)
    exponents = _exponents_of(blocks, fmt)
    scale = np.exp2((exponents - fmt.mantissa_bits + 1).astype(blocks.dtype)
                    )[..., np.newaxis]
    mantissas = np.rint(blocks / scale)
    np.clip(mantissas, -fmt.max_mantissa, fmt.max_mantissa, out=mantissas)
    return (mantissas * scale).reshape(original_shape).astype(np.float32)


def quantization_step(fmt: BfpFormat, exponent: int) -> float:
    """The representable spacing for a block with the given exponent."""
    return math.ldexp(1.0, exponent - fmt.mantissa_bits + 1)


def bfp_dot(a: np.ndarray, b: np.ndarray, fmt: BfpFormat) -> np.ndarray:
    """Dot product with both operands quantized to ``fmt``.

    Models the MVM datapath: operands are BFP-quantized, products and the
    accumulation tree are exact (integer mantissa arithmetic in hardware;
    float64 here), and the result is delivered to the vector pipeline as
    float16 — the paper's "secondary operations still execute as float16".
    """
    qa = quantize(a, fmt).astype(np.float64)
    qb = quantize(b, fmt).astype(np.float64)
    return np.float16(qa @ qb)


def to_float16(x: np.ndarray) -> np.ndarray:
    """Round to float16 and return as float32 (the pipeline word type).

    Out-of-range values saturate to ``inf``, the defined behaviour of the
    narrow pipeline word; numpy's overflow warning is suppressed.
    """
    with np.errstate(over="ignore"):
        return np.asarray(x, dtype=np.float16).astype(np.float32)


#: The RNN production format used by BW_S10 (Table IV).
MSFP_RNN = BfpFormat(mantissa_bits=2, exponent_bits=5, block_size=128)

#: The CNN format used by BW_CNN_A10 (Table VI).
MSFP_CNN = BfpFormat(mantissa_bits=5, exponent_bits=5, block_size=128)

#: Per-tile variant of the RNN format: one exponent per native row,
#: the cheapest (and noisiest) scaling the datapath supports.
MSFP_RNN_TILE = BfpFormat(mantissa_bits=2, exponent_bits=5, block_size=128,
                          scale_granularity="tile")

#: MX-compliant integer-element formats (OCP Microscaling shape:
#: 32-element blocks scaled by an E8M0 power of two). ``MX_INT8``
#: models MXINT8's sign + 7 magnitude bits; the narrower members keep
#: the MX block/scale shape with Brainwave-style mantissa narrowing.
MX_INT8 = BfpFormat(mantissa_bits=7, exponent_bits=8, block_size=32,
                    scale_encoding="e8m0")
MX_INT6 = BfpFormat(mantissa_bits=5, exponent_bits=8, block_size=32,
                    scale_encoding="e8m0")
MX_INT4 = BfpFormat(mantissa_bits=3, exponent_bits=8, block_size=32,
                    scale_encoding="e8m0")

#: The named format family, for CLI sweeps, the synthesis specializer,
#: and golden-vector conformance suites.
FORMAT_FAMILY: Dict[str, BfpFormat] = {
    "msfp_rnn": MSFP_RNN,
    "msfp_cnn": MSFP_CNN,
    "msfp_rnn_tile": MSFP_RNN_TILE,
    "mx_int8": MX_INT8,
    "mx_int6": MX_INT6,
    "mx_int4": MX_INT4,
}


def named_format(name: str) -> BfpFormat:
    """Look up a format family member by registry name."""
    try:
        return FORMAT_FAMILY[name]
    except KeyError:
        known = ", ".join(sorted(FORMAT_FAMILY))
        raise ConfigError(
            f"unknown numeric format {name!r}; known: {known}") from None
