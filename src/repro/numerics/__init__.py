"""Narrow-precision numerics: block floating point and float16 helpers."""

from .bfp import (
    MSFP_CNN,
    MSFP_RNN,
    BfpFormat,
    bfp_dot,
    block_exponents,
    quantization_step,
    quantize,
    quantize_with_info,
    scales_of,
    to_float16,
)
from .analysis import (
    ErrorStats,
    error_stats,
    expected_snr_db,
    mantissa_sweep,
    matvec_stats,
    quantization_stats,
)

__all__ = [
    "BfpFormat", "MSFP_RNN", "MSFP_CNN", "bfp_dot", "block_exponents",
    "quantization_step", "quantize", "quantize_with_info", "scales_of",
    "to_float16",
    "ErrorStats", "error_stats", "expected_snr_db", "mantissa_sweep",
    "matvec_stats", "quantization_stats",
]
