"""Narrow-precision numerics: block floating point and float16 helpers."""

from .bfp import (
    FORMAT_FAMILY,
    MSFP_CNN,
    MSFP_RNN,
    MSFP_RNN_TILE,
    MX_INT4,
    MX_INT6,
    MX_INT8,
    BfpFormat,
    bfp_dot,
    block_exponents,
    decompose,
    named_format,
    quantization_step,
    quantize,
    quantize_reference,
    quantize_with_info,
    scales_of,
    to_float16,
)
from .analysis import (
    ErrorStats,
    error_stats,
    expected_snr_db,
    mantissa_sweep,
    matvec_stats,
    quantization_stats,
)
from .pareto import (
    ParetoPoint,
    pareto_front,
    render_pareto_table,
    sweep_formats,
)

__all__ = [
    "BfpFormat", "MSFP_RNN", "MSFP_CNN", "MSFP_RNN_TILE",
    "MX_INT4", "MX_INT6", "MX_INT8", "FORMAT_FAMILY", "named_format",
    "bfp_dot", "block_exponents", "decompose", "quantization_step",
    "quantize", "quantize_reference", "quantize_with_info", "scales_of",
    "to_float16",
    "ErrorStats", "error_stats", "expected_snr_db", "mantissa_sweep",
    "matvec_stats", "quantization_stats",
    "ParetoPoint", "pareto_front", "render_pareto_table", "sweep_formats",
]
