"""Accuracy-vs-storage Pareto sweeps across the BFP/MX format family.

The paper's Section VI argument — narrow block floating-point is nearly
free in accuracy and much cheaper in silicon — becomes explorable once
:class:`~repro.numerics.bfp.BfpFormat` is a family: every member has a
storage cost (``bits_per_element``) and a measurable accuracy on a
fixed workload. This module sweeps a set of formats over a seeded
synthetic workload (Gaussian weights with heavy-tailed outliers, the
case that stresses shared exponents) and reports quantization and
matrix-vector SNR per format, plus the non-dominated Pareto front in
the (bits per element, matvec SNR) plane.

The sweep is fully deterministic for a given ``seed`` so its output can
be committed (``BENCH_numerics.json``) and archived by CI.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from .analysis import error_stats
from .bfp import FORMAT_FAMILY, BfpFormat, quantize


@dataclasses.dataclass(frozen=True)
class ParetoPoint:
    """One format's position in the accuracy-vs-storage plane."""

    key: str
    format_name: str
    bits_per_element: float
    quantize_snr_db: float
    quantize_rel_rms: float
    matvec_snr_db: float
    matvec_rel_rms: float

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def _synthetic_operands(rows: int, width: int,
                        seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded weights/activations with block-scale outliers.

    A 2% sprinkle of 8x outliers drags shared exponents up, which is
    exactly what separates per-block, per-tile, and small-block (MX)
    scaling in accuracy.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.normal(0.0, 1.0, (rows, width))
    mask = rng.random((rows, width)) < 0.02
    matrix = np.where(mask, matrix * 8.0, matrix)
    vector = rng.normal(0.0, 1.0, width)
    return matrix, vector


def sweep_formats(formats: Optional[Mapping[str, BfpFormat]] = None,
                  rows: int = 64, width: int = 256,
                  seed: int = 0) -> List[ParetoPoint]:
    """Measure every format on one seeded workload.

    Args:
        formats: Mapping of label -> format (default: the registry's
            :data:`~repro.numerics.bfp.FORMAT_FAMILY`). ``width`` must
            be a multiple of every format's block size.
        rows: Weight matrix rows.
        width: Row length (the tile width exponents amortize over).
        seed: Workload seed; the sweep is deterministic given it.

    Returns:
        Points sorted by ascending bits per element, ties by label.
    """
    family = dict(formats) if formats is not None else dict(FORMAT_FAMILY)
    for key in sorted(family):
        block = family[key].block_size
        if width % block:
            raise ConfigError(
                f"sweep width {width} is not a multiple of format "
                f"'{key}' block size {block}")
    matrix, vector = _synthetic_operands(rows, width, seed)
    exact = matrix @ vector
    points = []
    for key in sorted(family):
        fmt = family[key]
        q_matrix = quantize(matrix, fmt).astype(np.float64)
        q_vector = quantize(vector, fmt).astype(np.float64)
        q_stats = error_stats(matrix, q_matrix)
        mv_stats = error_stats(exact, q_matrix @ q_vector)
        points.append(ParetoPoint(
            key=key,
            format_name=fmt.name,
            bits_per_element=fmt.storage_bits_per_element(width),
            quantize_snr_db=q_stats.snr_db,
            quantize_rel_rms=q_stats.rel_rms_error,
            matvec_snr_db=mv_stats.snr_db,
            matvec_rel_rms=mv_stats.rel_rms_error,
        ))
    return sorted(points, key=lambda p: (p.bits_per_element, p.key))


def pareto_front(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset: no other point is cheaper AND more accurate.

    A point is dominated when another point has no more bits per element
    and no less matvec SNR, with at least one strict inequality.
    """
    front = []
    for p in points:
        dominated = any(
            q.bits_per_element <= p.bits_per_element
            and q.matvec_snr_db >= p.matvec_snr_db
            and (q.bits_per_element < p.bits_per_element
                 or q.matvec_snr_db > p.matvec_snr_db)
            for q in points)
        if not dominated:
            front.append(p)
    return front


def render_pareto_table(points: List[ParetoPoint]) -> str:
    """Fixed-width accuracy-vs-bits table; front members marked ``*``."""
    front_keys = {p.key for p in pareto_front(points)}
    header = (f"{'':1} {'format':<14} {'spec':<18} {'bits/elem':>9} "
              f"{'quant SNR':>10} {'matvec SNR':>11} {'rel RMS':>9}")
    lines = [header, "-" * len(header)]
    for p in points:
        mark = "*" if p.key in front_keys else " "
        lines.append(
            f"{mark:1} {p.key:<14} {p.format_name:<18} "
            f"{p.bits_per_element:>9.3f} {p.quantize_snr_db:>8.1f}dB "
            f"{p.matvec_snr_db:>9.1f}dB {p.matvec_rel_rms:>9.2e}")
    lines.append("(* = on the bits-vs-matvec-SNR Pareto front)")
    return "\n".join(lines)
