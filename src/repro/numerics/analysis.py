"""Quantization-error analysis for BFP formats.

Supports the Section VI claim that mantissas can be trimmed to 2-5 bits
with small accuracy impact: quantify signal-to-noise ratio and error
statistics of BFP quantization and of BFP matrix-vector products, and
sweep mantissa widths.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from .bfp import BfpFormat, quantize


@dataclasses.dataclass(frozen=True)
class ErrorStats:
    """Error statistics of an approximation ``approx`` of ``exact``."""

    snr_db: float
    max_abs_error: float
    mean_abs_error: float
    rel_rms_error: float

    def __str__(self) -> str:
        return (f"SNR {self.snr_db:.1f} dB, max|e| {self.max_abs_error:.3g}, "
                f"rel RMS {self.rel_rms_error:.3g}")


def error_stats(exact: np.ndarray, approx: np.ndarray) -> ErrorStats:
    """Compute error statistics between two arrays of the same shape."""
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    if exact.shape != approx.shape:
        raise ValueError(
            f"shape mismatch: {exact.shape} vs {approx.shape}")
    err = approx - exact
    signal_power = float(np.mean(exact ** 2))
    noise_power = float(np.mean(err ** 2))
    if noise_power == 0:
        snr = float("inf")
    elif signal_power == 0:
        snr = float("-inf")
    else:
        snr = 10.0 * np.log10(signal_power / noise_power)
    rms_exact = float(np.sqrt(signal_power))
    rel_rms = (float(np.sqrt(noise_power)) / rms_exact
               if rms_exact > 0 else float("inf"))
    return ErrorStats(
        snr_db=snr,
        max_abs_error=float(np.max(np.abs(err))) if err.size else 0.0,
        mean_abs_error=float(np.mean(np.abs(err))) if err.size else 0.0,
        rel_rms_error=rel_rms,
    )


def quantization_stats(x: np.ndarray, fmt: BfpFormat) -> ErrorStats:
    """Error statistics of quantizing ``x`` to ``fmt``."""
    return error_stats(x, quantize(x, fmt))


def matvec_stats(matrix: np.ndarray, vector: np.ndarray,
                 fmt: BfpFormat) -> ErrorStats:
    """Error statistics of a BFP matrix-vector product vs float64."""
    exact = np.asarray(matrix, dtype=np.float64) @ np.asarray(
        vector, dtype=np.float64)
    approx = quantize(matrix, fmt).astype(np.float64) @ quantize(
        vector, fmt).astype(np.float64)
    return error_stats(exact, approx)


def mantissa_sweep(
        x: np.ndarray,
        mantissa_widths: Optional[List[int]] = None,
        exponent_bits: int = 5,
        block_size: int = 128,
) -> Dict[int, ErrorStats]:
    """Quantization stats across mantissa widths (paper: 2-5 bits)."""
    widths = mantissa_widths if mantissa_widths is not None else [2, 3, 4, 5]
    results: Dict[int, ErrorStats] = {}
    for m in widths:
        fmt = BfpFormat(mantissa_bits=m, exponent_bits=exponent_bits,
                        block_size=block_size)
        results[m] = quantization_stats(x, fmt)
    return results


def expected_snr_db(fmt: BfpFormat) -> float:
    """Rough analytic SNR bound for uniform-in-block data.

    Quantization noise of a b-bit uniform quantizer gives ~6.02 dB per
    mantissa bit; the shared exponent costs a few dB because small
    elements in a block with a large maximum lose precision. This bound is
    used by property tests as a sanity floor (with generous margin).
    """
    return 6.02 * fmt.mantissa_bits - 6.0
