"""NPU configuration: the synthesis-time parameters of a BW NPU instance.

Section VI of the paper lists the four specialization parameters — data
type (precision), native vector size, number of lanes, and number of
matrix-vector tile engines — plus secondary structures (MRF size, MFU
count). :class:`NpuConfig` captures one fully-specified instance; the
three published instances of Table III (and the CNN variant of Table VI)
are provided as module-level constants.
"""

from __future__ import annotations

import dataclasses
import math

from .errors import ConfigError


@dataclasses.dataclass(frozen=True)
class NpuConfig:
    """A fully-specified BW NPU microarchitecture instance.

    Attributes:
        name: Human-readable instance name (e.g. ``"BW_S10"``).
        tile_engines: Number of matrix-vector tile engines in the MVM.
        lanes: Multiplier lanes per dot-product engine.
        native_dim: Native vector dimension N; matrices are N x N tiles.
        mrf_size: Matrix register file capacity in native-tile slots.
        mfus: Number of multifunction units after the MVM.
        fus_per_mfu: Function units inside each MFU (add/sub, multiply,
            activation behind a crossbar — three in the paper's design).
        initial_vrf_depth: Entries in the InitialVrf (MVM input vectors).
        addsub_vrf_depth: Entries in each AddSubVrf.
        multiply_vrf_depth: Entries in each MultiplyVrf.
        exponent_bits: Shared-exponent width of the BFP weight format.
        mantissa_bits: Mantissa width of the BFP weight format (2-5 in
            the paper). ``0`` disables quantization (exact mode), used
            for functional verification.
        bfp_block_size: Elements sharing one exponent. ``0`` (the
            default) means the native dimension — the paper's scheme;
            Microscaling formats use smaller blocks (e.g. 32). Must
            divide ``native_dim``.
        scale_granularity: ``"block"`` or ``"tile"`` — see
            :class:`repro.numerics.BfpFormat`.
        scale_encoding: ``"shared"`` or ``"e8m0"`` (MX power-of-two
            scales; requires ``exponent_bits == 8``).
        clock_mhz: Target clock frequency.
        device: Name of the FPGA device this instance targets.
    """

    name: str
    tile_engines: int
    lanes: int
    native_dim: int
    mrf_size: int
    mfus: int = 2
    fus_per_mfu: int = 3
    initial_vrf_depth: int = 4096
    addsub_vrf_depth: int = 1024
    multiply_vrf_depth: int = 1024
    exponent_bits: int = 5
    mantissa_bits: int = 2
    bfp_block_size: int = 0
    scale_granularity: str = "block"
    scale_encoding: str = "shared"
    clock_mhz: float = 250.0
    device: str = "generic"

    def __post_init__(self) -> None:
        for field in ("tile_engines", "lanes", "native_dim", "mrf_size",
                      "mfus", "fus_per_mfu", "initial_vrf_depth",
                      "addsub_vrf_depth", "multiply_vrf_depth"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive")
        if self.native_dim % self.lanes != 0:
            raise ConfigError(
                f"lanes ({self.lanes}) must divide native_dim "
                f"({self.native_dim}) so rows stream evenly through the "
                "accumulation tree")
        if self.mantissa_bits < 0 or self.mantissa_bits > 10:
            raise ConfigError("mantissa_bits must be in [0, 10]")
        if self.exponent_bits < 2 or self.exponent_bits > 8:
            raise ConfigError("exponent_bits must be in [2, 8]")
        if self.bfp_block_size < 0:
            raise ConfigError("bfp_block_size must be >= 0 (0 = native)")
        if self.bfp_block_size and self.native_dim % self.bfp_block_size:
            raise ConfigError(
                f"bfp_block_size ({self.bfp_block_size}) must divide "
                f"native_dim ({self.native_dim}) so native rows split "
                "into whole scale blocks")
        if self.scale_granularity not in ("block", "tile"):
            raise ConfigError(
                "scale_granularity must be 'block' or 'tile'")
        if self.scale_encoding not in ("shared", "e8m0"):
            raise ConfigError("scale_encoding must be 'shared' or 'e8m0'")
        if self.scale_encoding == "e8m0" and self.exponent_bits != 8:
            raise ConfigError(
                "e8m0 scales are 8-bit by definition; set exponent_bits=8")
        if self.clock_mhz <= 0:
            raise ConfigError("clock_mhz must be positive")

    # -- derived quantities --------------------------------------------------

    @property
    def dot_product_engines(self) -> int:
        """Dot-product engines per tile engine: one per native matrix row."""
        return self.native_dim

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate units in the MVM.

        ``tile_engines * native_dim rows * lanes`` — 96,000 for BW_S10.
        """
        return self.tile_engines * self.native_dim * self.lanes

    @property
    def flops_per_cycle(self) -> int:
        """Peak FLOPs per cycle: 2 per MAC (Section V-A)."""
        return 2 * self.total_macs

    @property
    def peak_tflops(self) -> float:
        """Peak throughput in teraflops at the configured clock."""
        return self.flops_per_cycle * self.clock_mhz * 1e6 / 1e12

    @property
    def cycles_per_native_row(self) -> int:
        """Cycles for one dot-product engine to consume a native row."""
        return self.native_dim // self.lanes

    @property
    def mrf_capacity_elements(self) -> int:
        """Total matrix elements storable on chip.

        Physical capacity assumes packed storage: a partial native tile
        only occupies SRAM for its real rows/columns (the paper's 306-slot
        BW_S10 MRF holds the largest DeepBench GRU, whose *padded* tile
        count exceeds 306 but whose 47.6M real weights fit).
        """
        return self.mrf_size * self.native_dim * self.native_dim

    @property
    def mrf_address_space(self) -> int:
        """Addressable native-tile slots for ``mv_mul`` indexing.

        Larger than the physical slot count because partially-filled edge
        tiles consume a full address but only fractional storage.
        """
        return 2 * self.mrf_size

    @property
    def effective_block_size(self) -> int:
        """Elements sharing one exponent: ``bfp_block_size`` or native."""
        return self.bfp_block_size or self.native_dim

    @property
    def bfp_format(self):
        """The weight :class:`~repro.numerics.BfpFormat`, or ``None``.

        ``None`` in exact mode (``mantissa_bits == 0``). The single
        authority the reference interpreter, functional simulator, and
        perf harness all construct their format from.
        """
        if self.mantissa_bits == 0:
            return None
        from .numerics.bfp import BfpFormat
        return BfpFormat(
            mantissa_bits=self.mantissa_bits,
            exponent_bits=self.exponent_bits,
            block_size=self.effective_block_size,
            scale_granularity=self.scale_granularity,
            scale_encoding=self.scale_encoding,
        )

    @property
    def weight_bits_per_element(self) -> float:
        """Average storage bits per BFP weight.

        One sign bit and ``mantissa_bits`` per element plus an
        ``exponent_bits`` exponent shared by each scale group (a
        ``bfp_block_size`` block, or the native row under per-tile
        granularity).
        """
        fmt = self.bfp_format
        if fmt is None:
            return 32.0  # exact mode stores float32
        return fmt.storage_bits_per_element(self.native_dim)

    @property
    def mrf_capacity_bytes(self) -> float:
        """On-chip weight capacity in bytes."""
        return self.mrf_capacity_elements * self.weight_bits_per_element / 8

    @property
    def precision_name(self) -> str:
        """Format string like ``"BFP (1s.5e.2m)"`` (Table IV notation)."""
        fmt = self.bfp_format
        if fmt is None:
            return "Float32 (exact mode)"
        return f"BFP ({fmt.label(self.native_dim)})"

    @property
    def cycle_time_s(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / (self.clock_mhz * 1e6)

    # -- helpers -------------------------------------------------------------

    def native_tiles_for(self, rows: int, cols: int) -> int:
        """Native tile slots needed to pin a ``rows x cols`` matrix."""
        return (math.ceil(rows / self.native_dim)
                * math.ceil(cols / self.native_dim))

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds at the configured clock."""
        return cycles * self.cycle_time_s * 1e3

    def replace(self, **changes) -> "NpuConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: Table III, row 1: Stratix V D5 instance (2.4 peak TFLOPS).
BW_S5 = NpuConfig(
    name="BW_S5", tile_engines=6, lanes=10, native_dim=100, mrf_size=306,
    mfus=2, clock_mhz=200.0, device="Stratix V D5", mantissa_bits=2,
)

#: Table III, row 2: Arria 10 1150 instance (9.8 peak TFLOPS).
BW_A10 = NpuConfig(
    name="BW_A10", tile_engines=8, lanes=16, native_dim=128, mrf_size=512,
    mfus=2, clock_mhz=300.0, device="Arria 10 1150", mantissa_bits=2,
)

#: Table III, row 3: Stratix 10 280 instance (48 peak TFLOPS, 96k MACs).
BW_S10 = NpuConfig(
    name="BW_S10", tile_engines=6, lanes=40, native_dim=400, mrf_size=306,
    mfus=2, clock_mhz=250.0, device="Stratix 10 280", mantissa_bits=2,
)

#: Table VI: CNN-specialized Arria 10 variant (BFP 1s.5e.5m).
BW_CNN_A10 = NpuConfig(
    name="BW_CNN_A10", tile_engines=8, lanes=16, native_dim=128,
    mrf_size=512, mfus=2, clock_mhz=300.0, device="Arria 10 1150",
    mantissa_bits=5,
)

#: All published configurations by name.
STANDARD_CONFIGS = {
    cfg.name: cfg for cfg in (BW_S5, BW_A10, BW_S10, BW_CNN_A10)
}
