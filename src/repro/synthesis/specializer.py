"""Synthesis specialization: tailoring an NPU instance to a model.

Section VI: "aligning the native vector dimension to parameters of the
model tends to minimize padding and waste", "increasing lane widths can
drive up intra-row-level parallelism", "increasing matrix multiply tiles
can exploit sub-matrix parallelism". The specializer searches the
(native_dim, lanes, tile_engines) space under a device's resource budget
and ranks candidates by *effective* throughput — peak TFLOPS discounted
by the model's padding efficiency at that native dimension.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..config import NpuConfig
from ..errors import SynthesisError
from .devices import FpgaDevice
from .resources import ResourceEstimate, estimate


@dataclasses.dataclass(frozen=True)
class ModelRequirements:
    """What the target model demands from an instance."""

    name: str
    #: (rows, cols) of every dense matrix to pin on chip.
    matrix_shapes: Tuple[Tuple[int, int], ...]

    @property
    def total_weights(self) -> int:
        return sum(r * c for r, c in self.matrix_shapes)

    def padding_efficiency(self, native_dim: int) -> float:
        """Real work / padded work when matrices tile at ``native_dim``."""
        real = 0
        padded = 0
        for rows, cols in self.matrix_shapes:
            real += rows * cols
            padded += (math.ceil(rows / native_dim) * native_dim
                       * math.ceil(cols / native_dim) * native_dim)
        return real / padded if padded else 1.0


def rnn_requirements(kind: str, hidden_dim: int,
                     input_dim: Optional[int] = None) -> ModelRequirements:
    """Requirements of an LSTM/GRU layer (4 or 3 gate matrix pairs)."""
    x = input_dim if input_dim is not None else hidden_dim
    gates = {"lstm": 4, "gru": 3}
    if kind not in gates:
        raise ValueError("kind must be 'lstm' or 'gru'")
    shapes = tuple([(hidden_dim, x)] * gates[kind]
                   + [(hidden_dim, hidden_dim)] * gates[kind])
    return ModelRequirements(name=f"{kind}{hidden_dim}",
                             matrix_shapes=shapes)


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One specialization candidate with its scores."""

    config: NpuConfig
    resources: ResourceEstimate
    padding_efficiency: float

    @property
    def effective_tflops(self) -> float:
        return self.config.peak_tflops * self.padding_efficiency


def candidate_space(device: FpgaDevice,
                    native_dims: Sequence[int] = (64, 100, 128, 200, 256,
                                                  320, 400, 512),
                    lane_options: Sequence[int] = (4, 8, 10, 16, 20, 32,
                                                   40, 64),
                    tile_options: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
                    mantissa_bits: int = 2) -> Iterable[NpuConfig]:
    """Enumerate the synthesis-parameter grid for a device."""
    for n in native_dims:
        for lanes in lane_options:
            if n % lanes != 0:
                continue
            for tiles in tile_options:
                yield NpuConfig(
                    name=f"bw_{device.family}_t{tiles}l{lanes}n{n}",
                    tile_engines=tiles, lanes=lanes, native_dim=n,
                    mrf_size=1, mfus=2, mantissa_bits=mantissa_bits,
                    clock_mhz=device.clock_mhz, device=device.name)


def specialize(requirements: ModelRequirements, device: FpgaDevice,
               mantissa_bits: int = 2,
               native_dims: Optional[Sequence[int]] = None
               ) -> List[Candidate]:
    """Rank feasible instances for a model on a device.

    Returns candidates sorted by effective TFLOPS (descending). The MRF
    is sized to pin the model's weights (packed storage) with a small
    margin; candidates whose resources exceed the device are dropped.

    Raises:
        SynthesisError: if no candidate fits the device at all.
    """
    n2 = lambda cfg: cfg.native_dim * cfg.native_dim
    kwargs = {}
    if native_dims is not None:
        kwargs["native_dims"] = native_dims
    candidates: List[Candidate] = []
    for base in candidate_space(device, mantissa_bits=mantissa_bits,
                                **kwargs):
        mrf_size = max(1, math.ceil(requirements.total_weights / n2(base)))
        cfg = base.replace(mrf_size=mrf_size)
        try:
            resources = estimate(cfg, device)
        except SynthesisError:
            continue
        if not resources.fits:
            continue
        candidates.append(Candidate(
            config=cfg, resources=resources,
            padding_efficiency=requirements.padding_efficiency(
                cfg.native_dim)))
    if not candidates:
        raise SynthesisError(
            f"no BW NPU instance for {requirements.name} fits "
            f"{device.name}")
    candidates.sort(key=lambda c: c.effective_tflops, reverse=True)
    return candidates


def best_config(requirements: ModelRequirements, device: FpgaDevice,
                mantissa_bits: int = 2) -> Candidate:
    """The highest-effective-throughput feasible instance."""
    return specialize(requirements, device,
                      mantissa_bits=mantissa_bits)[0]
