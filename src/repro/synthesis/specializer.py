"""Synthesis specialization: tailoring an NPU instance to a model.

Section VI: "aligning the native vector dimension to parameters of the
model tends to minimize padding and waste", "increasing lane widths can
drive up intra-row-level parallelism", "increasing matrix multiply tiles
can exploit sub-matrix parallelism". The specializer searches the
(native_dim, lanes, tile_engines) space under a device's resource budget
and ranks candidates by *effective* throughput — peak TFLOPS discounted
by the model's padding efficiency at that native dimension.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..config import NpuConfig
from ..errors import SynthesisError
from .devices import FpgaDevice
from .resources import ResourceEstimate, estimate


@dataclasses.dataclass(frozen=True)
class ModelRequirements:
    """What the target model demands from an instance."""

    name: str
    #: (rows, cols) of every dense matrix to pin on chip.
    matrix_shapes: Tuple[Tuple[int, int], ...]

    @property
    def total_weights(self) -> int:
        return sum(r * c for r, c in self.matrix_shapes)

    def padding_efficiency(self, native_dim: int) -> float:
        """Real work / padded work when matrices tile at ``native_dim``."""
        real = 0
        padded = 0
        for rows, cols in self.matrix_shapes:
            real += rows * cols
            padded += (math.ceil(rows / native_dim) * native_dim
                       * math.ceil(cols / native_dim) * native_dim)
        return real / padded if padded else 1.0


def rnn_requirements(kind: str, hidden_dim: int,
                     input_dim: Optional[int] = None) -> ModelRequirements:
    """Requirements of an LSTM/GRU layer (4 or 3 gate matrix pairs)."""
    x = input_dim if input_dim is not None else hidden_dim
    gates = {"lstm": 4, "gru": 3}
    if kind not in gates:
        raise ValueError("kind must be 'lstm' or 'gru'")
    shapes = tuple([(hidden_dim, x)] * gates[kind]
                   + [(hidden_dim, hidden_dim)] * gates[kind])
    return ModelRequirements(name=f"{kind}{hidden_dim}",
                             matrix_shapes=shapes)


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One specialization candidate with its scores."""

    config: NpuConfig
    resources: ResourceEstimate
    padding_efficiency: float

    @property
    def effective_tflops(self) -> float:
        return self.config.peak_tflops * self.padding_efficiency


def candidate_space(device: FpgaDevice,
                    native_dims: Sequence[int] = (64, 100, 128, 200, 256,
                                                  320, 400, 512),
                    lane_options: Sequence[int] = (4, 8, 10, 16, 20, 32,
                                                   40, 64),
                    tile_options: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
                    mantissa_bits: int = 2,
                    fmt=None) -> Iterable[NpuConfig]:
    """Enumerate the synthesis-parameter grid for a device.

    ``fmt`` (a :class:`~repro.numerics.BfpFormat`) pins the full weight
    format — mantissa/exponent widths, scale-block size, granularity,
    and encoding; native dimensions its block size does not divide are
    skipped. Without it only ``mantissa_bits`` varies (the paper's
    whole-row scheme).
    """
    fmt_kwargs = {}
    if fmt is not None:
        mantissa_bits = fmt.mantissa_bits
        fmt_kwargs = {"exponent_bits": fmt.exponent_bits,
                      "bfp_block_size": fmt.block_size,
                      "scale_granularity": fmt.scale_granularity,
                      "scale_encoding": fmt.scale_encoding}
    for n in native_dims:
        if fmt is not None and n % fmt.block_size != 0:
            continue
        for lanes in lane_options:
            if n % lanes != 0:
                continue
            for tiles in tile_options:
                yield NpuConfig(
                    name=f"bw_{device.family}_t{tiles}l{lanes}n{n}",
                    tile_engines=tiles, lanes=lanes, native_dim=n,
                    mrf_size=1, mfus=2, mantissa_bits=mantissa_bits,
                    clock_mhz=device.clock_mhz, device=device.name,
                    **fmt_kwargs)


def specialize(requirements: ModelRequirements, device: FpgaDevice,
               mantissa_bits: int = 2,
               native_dims: Optional[Sequence[int]] = None,
               fmt=None) -> List[Candidate]:
    """Rank feasible instances for a model on a device.

    Returns candidates sorted by effective TFLOPS (descending). The MRF
    is sized to pin the model's weights (packed storage) with a small
    margin; candidates whose resources exceed the device are dropped.
    ``fmt`` pins a full :class:`~repro.numerics.BfpFormat` (Microscaling
    block sizes, E8M0 scales, per-tile granularity) instead of just the
    mantissa width.

    Raises:
        SynthesisError: if no candidate fits the device at all.
    """
    n2 = lambda cfg: cfg.native_dim * cfg.native_dim
    kwargs = {}
    if native_dims is not None:
        kwargs["native_dims"] = native_dims
    candidates: List[Candidate] = []
    for base in candidate_space(device, mantissa_bits=mantissa_bits,
                                fmt=fmt, **kwargs):
        mrf_size = max(1, math.ceil(requirements.total_weights / n2(base)))
        cfg = base.replace(mrf_size=mrf_size)
        try:
            resources = estimate(cfg, device)
        except SynthesisError:
            continue
        if not resources.fits:
            continue
        candidates.append(Candidate(
            config=cfg, resources=resources,
            padding_efficiency=requirements.padding_efficiency(
                cfg.native_dim)))
    if not candidates:
        raise SynthesisError(
            f"no BW NPU instance for {requirements.name} fits "
            f"{device.name}")
    candidates.sort(key=lambda c: c.effective_tflops, reverse=True)
    return candidates


def best_config(requirements: ModelRequirements, device: FpgaDevice,
                mantissa_bits: int = 2) -> Candidate:
    """The highest-effective-throughput feasible instance."""
    return specialize(requirements, device,
                      mantissa_bits=mantissa_bits)[0]


@dataclasses.dataclass(frozen=True)
class FormatCandidate:
    """Best feasible instance for one weight format, with its accuracy
    point from the numerics sweep."""

    format_key: str
    candidate: Candidate
    bits_per_element: float
    matvec_snr_db: float

    @property
    def m20ks(self) -> int:
        return self.candidate.resources.m20ks


def format_pareto(requirements: ModelRequirements, device: FpgaDevice,
                  formats=None, seed: int = 0) -> List[FormatCandidate]:
    """Sweep the format family for a model on a device.

    For each format, specialize the instance grid under that format and
    pair the best candidate with the format's accuracy point from
    :func:`repro.numerics.sweep_formats` — the accuracy-vs-resource
    trade the synthesis flow ranks when choosing a per-model data type
    (Section VI). Formats with no feasible instance are dropped. Results
    are sorted by storage cost (ascending bits per element).
    """
    from ..numerics import FORMAT_FAMILY, sweep_formats
    formats = dict(formats) if formats else dict(FORMAT_FAMILY)
    accuracy = {p.key: p for p in sweep_formats(formats, seed=seed)}
    out: List[FormatCandidate] = []
    for key, fmt in formats.items():
        try:
            cand = specialize(requirements, device, fmt=fmt)[0]
        except SynthesisError:
            continue
        point = accuracy[key]
        out.append(FormatCandidate(
            format_key=key, candidate=cand,
            bits_per_element=point.bits_per_element,
            matvec_snr_db=point.matvec_snr_db))
    if not out:
        raise SynthesisError(
            f"no format-family instance for {requirements.name} fits "
            f"{device.name}")
    out.sort(key=lambda f: (f.bits_per_element, f.format_key))
    return out
