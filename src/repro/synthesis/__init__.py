"""Synthesis specialization: devices, resource model, and specializer."""

from .devices import (
    ARRIA_10_1150,
    DEVICES,
    STRATIX_10_280,
    STRATIX_V_D5,
    FpgaDevice,
    device_by_name,
)
from .resources import (
    FAMILY_COEFFICIENTS,
    FamilyCoefficients,
    ResourceEstimate,
    check_fits,
    estimate,
    exponent_groups_per_row,
    mrf_m20ks,
    weight_storage_bits,
)
from .specializer import (
    Candidate,
    FormatCandidate,
    ModelRequirements,
    best_config,
    candidate_space,
    format_pareto,
    rnn_requirements,
    specialize,
)

__all__ = [
    "FpgaDevice", "DEVICES", "STRATIX_V_D5", "ARRIA_10_1150",
    "STRATIX_10_280", "device_by_name", "FamilyCoefficients",
    "FAMILY_COEFFICIENTS", "ResourceEstimate", "estimate", "check_fits",
    "exponent_groups_per_row", "mrf_m20ks", "weight_storage_bits",
    "Candidate", "FormatCandidate", "ModelRequirements", "best_config",
    "candidate_space", "format_pareto", "rnn_requirements", "specialize",
]
