"""FPGA device library (the three generations of Table III).

Device resource totals are reconstructed from the paper's Table III usage
percentages (e.g. BW_S10 uses 845,719 ALMs = 91% of a Stratix 10 280) and
match Intel's published device tables.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class FpgaDevice:
    """One FPGA device: resource totals and family traits."""

    name: str
    family: str
    alms: int
    m20ks: int
    dsps: int
    #: Nominal BW NPU clock on this family (Table III).
    clock_mhz: float
    #: M20K block geometry (bits, max port width).
    m20k_bits: int = 20480
    m20k_width: int = 40

    @property
    def m20k_depth(self) -> int:
        return self.m20k_bits // self.m20k_width


STRATIX_V_D5 = FpgaDevice(
    name="Stratix V D5", family="stratix5",
    alms=172600, m20ks=2014, dsps=1590, clock_mhz=200.0)

ARRIA_10_1150 = FpgaDevice(
    name="Arria 10 1150", family="arria10",
    alms=427200, m20ks=2713, dsps=1518, clock_mhz=300.0)

STRATIX_10_280 = FpgaDevice(
    name="Stratix 10 280", family="stratix10",
    alms=933120, m20ks=11721, dsps=5760, clock_mhz=250.0)

DEVICES: Dict[str, FpgaDevice] = {
    d.name: d for d in (STRATIX_V_D5, ARRIA_10_1150, STRATIX_10_280)
}


def device_by_name(name: str) -> FpgaDevice:
    """Look up a device; raises ``KeyError`` with the catalogue on miss."""
    if name not in DEVICES:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}")
    return DEVICES[name]
