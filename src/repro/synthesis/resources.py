"""FPGA resource cost model, calibrated on the Table III design points.

Structure of the model:

* **DSPs** — narrow-mantissa multiplications pack into DSP blocks
  (Section VI); each family has a fitted MACs-per-DSP packing density,
  with the remainder implemented as cell-optimized soft-logic
  multipliers in ALMs.
* **ALMs** — dominated by the MAC array (soft multipliers, accumulation
  trees, control); a fitted per-MAC cost per family captures the ALM
  architecture and packing efficiency differences across generations.
* **M20Ks** — structural: every dot-product engine needs a private MRF
  bank wide enough to feed its lanes each cycle
  (``ceil(lanes * weight_bits / port_width)`` slices) and deep enough for
  its share of the MRF; VRFs and I/O buffers add a fitted per-family
  constant. This reproduces the 1192 / 2171 / 8192 M20K counts of
  Table III from first principles (within the fitted constant).

Single-point-per-family calibration means intra-family *scaling* is
linear in the structural terms — exactly what the synthesis specializer
needs to trade tiles/lanes/native-dim within a device.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from ..config import NpuConfig
from ..errors import SynthesisError
from .devices import FpgaDevice, device_by_name


@dataclasses.dataclass(frozen=True)
class FamilyCoefficients:
    """Fitted per-family cost coefficients."""

    alm_per_mac: float
    macs_per_dsp: float
    #: M20K blocks for VRFs, instruction buffers, and network queues.
    m20k_overhead: int


#: Coefficients fitted on the three Table III rows.
FAMILY_COEFFICIENTS: Dict[str, FamilyCoefficients] = {
    "stratix5": FamilyCoefficients(alm_per_mac=24.94, macs_per_dsp=5.73,
                                   m20k_overhead=592),
    "arria10": FamilyCoefficients(alm_per_mac=13.22, macs_per_dsp=10.79,
                                  m20k_overhead=123),
    "stratix10": FamilyCoefficients(alm_per_mac=8.81, macs_per_dsp=18.30,
                                    m20k_overhead=992),
}


@dataclasses.dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of a configuration on a device."""

    config: NpuConfig
    device: FpgaDevice
    alms: int
    m20ks: int
    dsps: int

    @property
    def alm_fraction(self) -> float:
        return self.alms / self.device.alms

    @property
    def m20k_fraction(self) -> float:
        return self.m20ks / self.device.m20ks

    @property
    def dsp_fraction(self) -> float:
        return self.dsps / self.device.dsps

    @property
    def fits(self) -> bool:
        return (self.alms <= self.device.alms
                and self.m20ks <= self.device.m20ks
                and self.dsps <= self.device.dsps)

    @property
    def limiting_resource(self) -> str:
        fractions = {"ALMs": self.alm_fraction,
                     "M20Ks": self.m20k_fraction,
                     "DSPs": self.dsp_fraction}
        return max(fractions, key=fractions.get)

    def summary(self) -> str:
        return (f"{self.config.name} on {self.device.name}: "
                f"{self.alms} ALMs ({100 * self.alm_fraction:.0f}%), "
                f"{self.m20ks} M20Ks ({100 * self.m20k_fraction:.0f}%), "
                f"{self.dsps} DSPs ({100 * self.dsp_fraction:.0f}%)")


def weight_storage_bits(config: NpuConfig) -> int:
    """Per-element MRF storage bits: sign + mantissa (the shared exponent
    lives in a separate narrow side structure)."""
    return 1 + config.mantissa_bits


def exponent_groups_per_row(config: NpuConfig) -> int:
    """Shared exponents stored per native matrix row.

    The paper's scheme (one exponent per native row — whole-row blocks,
    or any block size under per-tile granularity) stores exponents in
    the narrow side structure covered by the fitted per-family M20K
    overhead. Microscaling-style sub-row blocks multiply this count.
    """
    if config.mantissa_bits == 0 or config.scale_granularity == "tile":
        return 1
    return config.native_dim // config.effective_block_size


def mrf_m20ks(config: NpuConfig, device: FpgaDevice) -> int:
    """M20K blocks for the matrix register file.

    Each of the ``tiles * N`` dot-product engines owns a private bank
    (Section V-A: one read port per multiplier); the bank must deliver
    ``lanes * weight_bits`` bits per cycle (width slices) and hold
    ``mrf_size * N * weight_bits / tiles`` bits (depth slices). When a
    format keeps more than one shared exponent per native row, the extra
    exponents ride in the same banks and deepen them; the single per-row
    exponent of the paper's scheme stays in the fitted side-structure
    overhead, so Table III calibration points are unchanged.
    """
    wbits = weight_storage_bits(config)
    dpe_count = config.tile_engines * config.native_dim
    width_bits = config.lanes * wbits
    width_slices = math.ceil(width_bits / device.m20k_width)
    bank_bits = (config.mrf_size * config.native_dim * wbits
                 / config.tile_engines)
    groups = exponent_groups_per_row(config)
    if groups > 1:
        # mrf_size / tiles native rows per bank, ``groups`` exponents
        # of ``exponent_bits`` each beyond the side-structure one.
        bank_bits += (config.mrf_size * (groups - 1)
                      * config.exponent_bits / config.tile_engines)
    usable_bits_per_group = device.m20k_depth * width_bits
    depth_groups = math.ceil(bank_bits / max(usable_bits_per_group, 1))
    return dpe_count * width_slices * depth_groups


def estimate(config: NpuConfig,
             device: Optional[FpgaDevice] = None) -> ResourceEstimate:
    """Estimate FPGA resource usage of ``config`` on ``device``
    (default: the device named in the config)."""
    if device is None:
        device = device_by_name(config.device)
    if device.family not in FAMILY_COEFFICIENTS:
        raise SynthesisError(
            f"no calibrated coefficients for family {device.family!r}")
    coeff = FAMILY_COEFFICIENTS[device.family]
    macs = config.total_macs
    dsps = min(device.dsps, round(macs / coeff.macs_per_dsp))
    alms = round(coeff.alm_per_mac * macs)
    m20ks = mrf_m20ks(config, device) + coeff.m20k_overhead
    return ResourceEstimate(config=config, device=device, alms=alms,
                            m20ks=m20ks, dsps=dsps)


def check_fits(config: NpuConfig,
               device: Optional[FpgaDevice] = None) -> ResourceEstimate:
    """Estimate and raise :class:`SynthesisError` if over budget."""
    result = estimate(config, device)
    if not result.fits:
        raise SynthesisError(
            f"{config.name} does not fit {result.device.name}: "
            f"{result.summary()}")
    return result
