"""Table I: critical-path analysis of LSTM, GRU, and CNN workloads.

Regenerates the UDM/SDM/BW-cycle comparison for the four Table I
workloads and checks the reproduced values against the published ones.
"""


from repro.harness import table1


def test_table1(benchmark, emit):
    table = benchmark(table1)
    emit(table, "table1_critical_path")

    # Shape assertions against the published numbers.
    values = {row[0]: row for row in table.rows}
    lstm = values["LSTM 2000x2000"]
    assert int(lstm[2]) == 19                       # UDM exact
    assert int(lstm[3]) == 352                      # SDM exact
    assert abs(int(lstm[4]) - 718) / 718 < 0.05     # BW within 5%
    gru = values["GRU 2800x2800"]
    assert abs(int(gru[3]) - 520) / 520 < 0.02
    cnn1 = values["CNN 28x28x128 K:128x3x3"]
    assert abs(int(cnn1[4]) - 1326) / 1326 < 0.06
