"""Table III: hardware implementation results across three FPGAs."""

import pytest

from repro.config import BW_A10, BW_S5, BW_S10
from repro.harness import table3
from repro.harness.experiments import TABLE3_PUBLISHED
from repro.synthesis.resources import estimate


def test_table3(benchmark, emit):
    table = benchmark(table3)
    emit(table, "table3_fpga_implementations")

    for config in (BW_S5, BW_A10, BW_S10):
        est = estimate(config)
        alms, m20ks, dsps, mhz, tflops = TABLE3_PUBLISHED[config.name]
        assert est.alms == pytest.approx(alms, rel=0.01)
        assert est.m20ks == pytest.approx(m20ks, rel=0.01)
        assert est.dsps == pytest.approx(dsps, rel=0.01)
        assert config.clock_mhz == mhz
        assert config.peak_tflops == pytest.approx(tflops, rel=0.02)
        assert est.fits
