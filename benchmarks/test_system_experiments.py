"""System-level extension experiments: specialization recovery
(Section VII-B1) and the microservice serving breakdown (Section II-A).
"""

from repro.harness.experiments import (
    serving_breakdown,
    specialization_recovery,
)


def test_specialization_recovery(benchmark, emit):
    table = benchmark(specialization_recovery)
    emit(table, "specialization_recovery")

    # Per model, the specialized instance recovers utilization by an
    # order of magnitude at equal-or-better per-step latency.
    rows = table.rows
    for big, lean in zip(rows[::2], rows[1::2]):
        assert big[0] == lean[0]
        assert float(lean[6]) > 5 * float(big[6])       # %util
        assert float(lean[4]) <= float(big[4]) * 1.05   # us/step


def test_serving_breakdown(benchmark, emit):
    table = benchmark(serving_breakdown)
    emit(table, "serving_breakdown")

    # Large-model serving is compute-dominated even across the
    # datacenter fabric ("no software in the loop").
    by_key = {(r[0], r[1]): float(r[5]) for r in table.rows}
    assert by_key[("GRU h=2816 t=750", "same_rack")] < 1.0
    assert by_key[("GRU h=2816 t=750", "same_datacenter")] < 5.0
    # Tiny single-step requests feel the network the most.
    assert by_key[("GRU h=512 t=1", "same_datacenter")] > \
        by_key[("GRU h=2816 t=750", "same_datacenter")]
