"""Fig. 2: LSTM critical-path scaling with dimension N and #FU."""

from repro.criticalpath import analytic
from repro.harness import fig2


def test_fig2(benchmark, emit):
    table = benchmark(fig2)
    emit(table, "fig2_lstm_critical_path")

    # O(N^2) operation growth, O(log N) idealized latency.
    assert analytic.lstm_ops_per_step(4096) \
        > 15 * analytic.lstm_ops_per_step(1024)
    assert analytic.lstm_udm_cycles_per_step(4096) \
        - analytic.lstm_udm_cycles_per_step(1024) == 2
    # SDM transitions from depth-bound (small N) to work-bound (large N).
    small_gap = (analytic.lstm_sdm_cycles_per_step(256, 96000)
                 - analytic.lstm_udm_cycles_per_step(256))
    large_gap = (analytic.lstm_sdm_cycles_per_step(4096, 96000)
                 - analytic.lstm_udm_cycles_per_step(4096))
    assert small_gap < 10 < large_gap
