"""Table VI: ResNet-50 featurizer serving, BW_CNN_A10 vs Nvidia P40."""

import pytest

from repro.baselines import P40, GpuCnnModel
from repro.config import BW_CNN_A10
from repro.harness import table6
from repro.models.resnet import resnet50_featurizer, total_ops
from repro.timing.cnn import network_timing


def test_table6(benchmark, emit):
    table = benchmark(table6)
    emit(table, "table6_resnet50")


def test_bw_wins_batch1_loses_throughput_at_batch16():
    """The paper's crossover: BW leads at batch 1 (559 vs 461 IPS);
    the P40 wins aggregate throughput at batch 16 at the cost of 7 ms
    latency."""
    ops = total_ops(resnet50_featurizer())
    bw = network_timing(BW_CNN_A10)
    p40 = GpuCnnModel(P40)
    gpu1 = p40.run(ops, batch=1)
    gpu16 = p40.run(ops, batch=16)
    assert bw.ips > gpu1.ips
    assert gpu16.ips > 3 * bw.ips
    assert gpu16.latency_ms > 2.5 * gpu1.latency_ms


def test_bw_anchors_within_8pct():
    bw = network_timing(BW_CNN_A10)
    assert bw.ips == pytest.approx(559, rel=0.08)
    assert bw.latency_ms == pytest.approx(1.8, rel=0.08)


def test_gpu_anchors_within_25pct():
    ops = total_ops(resnet50_featurizer())
    p40 = GpuCnnModel(P40)
    assert p40.run(ops, batch=1).ips == pytest.approx(461, rel=0.25)
    assert p40.run(ops, batch=16).ips == pytest.approx(2270, rel=0.15)
