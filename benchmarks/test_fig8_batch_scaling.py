"""Fig. 8: utilization scaling with batch size (1, 2, 4, 32)."""

from repro.baselines import TITAN_XP, GpuRnnModel
from repro.baselines.deepbench import BATCH_SCALING_SUBSET
from repro.harness import fig8


def test_fig8(benchmark, emit):
    table = benchmark(fig8)
    emit(table, "fig8_batch_scaling")


def test_bw_utilization_flat_across_batches(emit):
    table = fig8(batches=(1, 2, 4, 32))
    by_bench = {}
    for row in table.rows:
        by_bench.setdefault(row[0], []).append(float(row[2]))
    for bench, utils in by_bench.items():
        assert max(utils) - min(utils) < 0.5, bench


def test_gpu_utilization_roughly_linear_until_roof():
    model = GpuRnnModel(TITAN_XP)
    bench = BATCH_SCALING_SUBSET[0]
    utils = {
        b: model.run(bench.weight_bytes(4.0), bench.ops_per_step,
                     bench.time_steps, batch=b).utilization
        for b in (1, 2, 4)
    }
    # Weight traffic is shared: doubling batch ~doubles utilization.
    assert 1.7 < utils[2] / utils[1] < 2.1
    assert 1.7 < utils[4] / utils[2] < 2.1


def test_gpu_under_13pct_at_batch_4():
    """'At batch size of 4, the Titan Xp remains at under 13%
    utilization even for large RNNs.'"""
    model = GpuRnnModel(TITAN_XP)
    for bench in BATCH_SCALING_SUBSET:
        util = model.run(bench.weight_bytes(4.0), bench.ops_per_step,
                         bench.time_steps, batch=4).utilization
        assert util < 0.13, bench.name
