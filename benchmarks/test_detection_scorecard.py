"""Chaos-validated detection scorecards: the monitoring plane graded.

Every catalog scenario runs with the fleet telemetry plane attached —
mitigated and ablated — and the fired incidents are joined against the
injector's ground-truth fault intervals.  The acceptance bar from the
observability milestone: on mitigated runs at the committed seed,
detection precision and recall both reach 0.8+ for all four
scenarios, with MTTD reported per scenario.
"""

from repro.harness.experiments import monitoring

REQUESTS = 50_000


def _cell(table, scenario, stack, header):
    idx = table.headers.index(header)
    for row in table.rows:
        if row[0] == scenario and row[1] == stack:
            return row[idx]
    raise AssertionError(f"no row for {scenario}/{stack}")


def test_detection_scorecard(benchmark, emit):
    table = benchmark(monitoring, requests=REQUESTS)
    emit(table, "detection_scorecard")

    scenarios = ("overload", "partition", "rack_loss", "rolling_slow")
    assert len(table.rows) == len(scenarios) * 2

    for scenario in scenarios:
        # The committed-seed acceptance gate on the mitigated stack.
        assert float(_cell(table, scenario, "mitigated",
                           "precision")) >= 0.8, scenario
        assert float(_cell(table, scenario, "mitigated",
                           "recall")) >= 0.8, scenario
        # Every scenario injected faults and reports an MTTD.
        assert int(_cell(table, scenario, "mitigated", "faults")) > 0
        assert _cell(table, scenario, "mitigated", "mttd_s") != "-"
        # The ablated stack still detects its faults (they are far
        # louder without mitigations) — recall stays useful there too.
        assert float(_cell(table, scenario, "ablated",
                           "recall")) >= 0.5, scenario


def test_detection_scorecard_deterministic():
    """Same seed => byte-identical scorecard table."""
    a = monitoring(requests=8_000, seed=7)
    b = monitoring(requests=8_000, seed=7)
    assert a.render() == b.render()
