"""Ablation: end-to-end inference accuracy vs BFP mantissa width.

Section VI claims mantissas trim to 2-5 bits "with negligible impact on
accuracy". We cannot fine-tune production models, but we can measure
end-to-end *decision agreement* with the float32 reference on a
classification model executed through the full NPU numerics path
(BFP matmuls, float16 point-wise pipeline): the text CNN's predicted
class across random inputs, per mantissa width.
"""

import numpy as np

from repro.compiler import compile_text_cnn
from repro.config import NpuConfig
from repro.harness.tables import ExperimentTable
from repro.models.textcnn import TextCnnReference


def _agreement(mantissa_bits: int, trials: int = 24) -> float:
    model = TextCnnReference(vocab_size=120, embed_dim=16,
                             filter_width=3, num_filters=32,
                             num_classes=6, seed=17)
    cfg = NpuConfig(name=f"m{mantissa_bits}", tile_engines=2, lanes=8,
                    native_dim=16, mrf_size=256,
                    mantissa_bits=mantissa_bits)
    compiled = compile_text_cnn(model, cfg)
    rng = np.random.default_rng(23)
    hits = 0
    for _ in range(trials):
        tokens = rng.integers(0, 120, int(rng.integers(6, 20)))
        hits += compiled.predict(tokens) == model.predict(tokens)
    return hits / trials


def test_accuracy_ablation(benchmark, emit):
    def sweep():
        rows = []
        for m in (2, 3, 4, 5):
            rows.append([f"1s.5e.{m}m", f"{100 * _agreement(m):.0f}%"])
        return ExperimentTable(
            "Ablation: prediction agreement with float32 vs BFP "
            "mantissa width (text CNN, full NPU numerics)",
            ["Format", "agreement"],
            rows,
            notes=["Decision agreement on random inputs; the paper "
                   "reports 1-2% accuracy loss at 2-5 mantissa bits "
                   "after brief fine-tuning, which we cannot perform — "
                   "agreement without any fine-tuning is the harsher "
                   "test."])

    table = benchmark(sweep)
    emit(table, "ablation_accuracy")

    rates = [float(r[1].rstrip("%")) for r in table.rows]
    # 5-bit mantissas preserve essentially every decision; agreement
    # never degrades as precision grows.
    assert rates[-1] >= 95.0
    assert all(b >= a - 5 for a, b in zip(rates, rates[1:]))
