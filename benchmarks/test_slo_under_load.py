"""Serving under load: the Section I motivation made quantitative.

A BW NPU serving requests one at a time sustains millisecond p99
latency at hundreds of requests per second; a GPU stack that must form
batches for efficiency pays tens of milliseconds at the median even
when idle, and collapses past its batching capacity.
"""

from repro.harness.experiments import slo_under_load


def test_slo_under_load(benchmark, emit):
    table = benchmark(slo_under_load)
    emit(table, "slo_under_load")

    for row in table.rows:
        bw_p99 = float(row[2])
        gpu_p99 = float(row[4])
        assert bw_p99 < 4.0          # real-time at every load point
        assert gpu_p99 > 20 * bw_p99  # the batching tax


def test_bw_sustains_higher_rates_than_gpu_stack():
    from repro.baselines import TITAN_XP, GpuRnnModel
    from repro.baselines.deepbench import RnnBenchmark
    from repro.harness import bw_rnn_report
    from repro.system.loadgen import Batch1Server, BatchingServer

    bench = RnnBenchmark("gru", 2048, 375)
    bw = Batch1Server(bw_rnn_report(bench).latency_s)
    gpu_model = GpuRnnModel(TITAN_XP)
    gpu = BatchingServer(
        lambda b: gpu_model.run(
            bench.weight_bytes(TITAN_XP.bytes_per_weight),
            bench.ops_per_step, bench.time_steps, batch=b).latency_s,
        max_batch=32, timeout_s=0.02)
    assert bw.capacity_rps > 3 * gpu.capacity_rps()
