"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure of the paper, times the
reproduction pipeline with pytest-benchmark, prints the rendered table,
and archives it under ``benchmarks/results/`` (EXPERIMENTS.md is written
from those archives).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys):
    """Print a rendered ExperimentTable and archive it to results/."""

    def _emit(table, name):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)
    return _emit
