"""Serving under faults: the Section II-A resilience story quantified.

A single-replica service with a naive client loses every request the
fault model touches — including a solid quarter of the run while its
node is crashed. Two replicas behind the resilient client (retries with
backoff, circuit-breaker failover, hedging) ride through the same fault
trace at three-nines availability, and the whole simulation is
deterministic under a fixed seed.
"""

from repro.harness.experiments import slo_under_faults


def test_slo_under_faults(benchmark, emit):
    table = benchmark(slo_under_faults)
    emit(table, "slo_under_faults")

    baseline, naive, resilient = table.rows
    assert float(baseline[2]) == 100.0          # fault-free sanity
    # A naive single-replica client shows measurable request loss...
    assert float(naive[2]) < 99.0
    # ...while replicas + retries hold >= 99.9% availability through
    # the same transient-failure rate and node crash.
    assert float(resilient[2]) >= 99.9
    # Resilience costs little goodput relative to the fault-free run.
    assert float(resilient[3]) >= 0.95 * float(baseline[3])


def test_slo_under_faults_deterministic():
    """Same seed => byte-identical table (availability and latency)."""
    a = slo_under_faults(requests=400, seed=7)
    b = slo_under_faults(requests=400, seed=7)
    assert a.render() == b.render()


def test_slo_under_faults_seed_sensitivity():
    """Different seeds draw different fault sequences."""
    a = slo_under_faults(requests=400, seed=7)
    b = slo_under_faults(requests=400, seed=8)
    assert a.column("avail %") != b.column("avail %") \
        or a.column("p99 ms") != b.column("p99 ms")
