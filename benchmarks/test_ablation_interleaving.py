"""Ablation: batch-interleaved RNN evaluation (Section VII-B3).

The paper leaves batch interleaving as future work: interleave the
timestep computation of independent batch elements to fill the deep
pipeline of small RNNs. This bench implements it
(`compile_lstm_interleaved`) and measures it with and without the
configuration-caching scheduler.

Finding (recorded in EXPERIMENTS.md): in the calibrated model the
small-model floor is top-level-scheduler *throughput* (per-chain setup),
not pipeline-depth stalls — so interleaving alone is latency-neutral,
the caching scheduler alone recovers ~3x utilization, and interleaving
on top keeps that utilization flat across batch sizes with per-element
latency unchanged (the batch-robustness BW claims in Fig. 8).
"""

from repro.compiler import compile_lstm_interleaved
from repro.compiler.lowering import LstmShapeOnly
from repro.config import BW_S10
from repro.harness.tables import ExperimentTable
from repro.timing import TimingSimulator


def _per_step(compiled, replay):
    a = TimingSimulator(BW_S10, replay_loops=replay).run(
        compiled.program, bindings={"steps": 4},
        include_invocation_overhead=False).total_cycles
    b = TimingSimulator(BW_S10, replay_loops=replay).run(
        compiled.program, bindings={"steps": 10},
        include_invocation_overhead=False).total_cycles
    return (b - a) / 6


def _util(hidden, per_step_per_element):
    from repro.models import LstmShape
    ops = LstmShape(hidden, hidden).ops_per_step
    return ops / (per_step_per_element / (BW_S10.clock_mhz * 1e6)) \
        / (BW_S10.peak_tflops * 1e12)


def test_interleaving_ablation(benchmark, emit):
    hidden = 512

    def sweep():
        rows = []
        for batch in (1, 2, 4):
            compiled = compile_lstm_interleaved(
                LstmShapeOnly(hidden, hidden), BW_S10, batch=batch)
            plain = _per_step(compiled, replay=False) / batch
            replay = _per_step(compiled, replay=True) / batch
            rows.append([
                str(batch), f"{plain:.0f}", f"{100 * _util(hidden, plain):.1f}",
                f"{replay:.0f}", f"{100 * _util(hidden, replay):.1f}"])
        return ExperimentTable(
            f"Ablation: batch interleaving, LSTM-{hidden} on BW_S10 "
            "(per-element cycles/step)",
            ["Batch", "cycles (setup sched.)", "%util",
             "cycles (caching sched.)", "%util"],
            rows,
            notes=["The caching scheduler pays full chain setup once "
                   "and dispatch-only on replays; with it, interleaved "
                   "batches keep per-element latency and utilization "
                   "flat — the firmware optimization of Section "
                   "VII-B3."])

    table = benchmark(sweep)
    emit(table, "ablation_interleaving")

    plain_utils = [float(r[2]) for r in table.rows]
    replay_utils = [float(r[4]) for r in table.rows]
    # Caching scheduler recovers ~3x utilization for the small LSTM.
    assert all(r > 2.5 * p for p, r in zip(plain_utils, replay_utils))
    # Per-element figures stay flat across batch sizes.
    assert max(replay_utils) - min(replay_utils) < 1.0


def test_interleaved_latency_scales_linearly():
    compiled2 = compile_lstm_interleaved(LstmShapeOnly(512, 512),
                                         BW_S10, batch=2)
    compiled4 = compile_lstm_interleaved(LstmShapeOnly(512, 512),
                                         BW_S10, batch=4)
    per2 = _per_step(compiled2, replay=True)
    per4 = _per_step(compiled4, replay=True)
    assert 1.8 < per4 / per2 < 2.2
