"""Table V: DeepBench RNN inference at batch 1 — the paper's headline
result. Regenerates every row (SDM / BW_S10 / Titan Xp) and checks the
reproduction against the published measurements."""

import pytest

from repro.baselines.deepbench import SUITE, published_row
from repro.harness import bw_rnn_report, sdm_latency_ms, table5
from repro.harness.experiments import gpu_rnn_result


def test_table5(benchmark, emit):
    table = benchmark(table5)
    emit(table, "table5_deepbench_rnn")


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_bw_latency_within_15pct_of_paper(bench):
    pub = published_row(bench)
    report = bw_rnn_report(bench)
    assert report.latency_ms == pytest.approx(pub.bw_latency_ms,
                                              rel=0.15)


@pytest.mark.parametrize("bench", SUITE, ids=lambda b: b.name)
def test_sdm_latency_within_3pct_of_paper(bench):
    pub = published_row(bench)
    # The paper rounds small entries to two significant figures, so a
    # small absolute tolerance accompanies the 3% relative one.
    assert sdm_latency_ms(bench) == pytest.approx(pub.sdm_latency_ms,
                                                  rel=0.03, abs=6e-4)


@pytest.mark.parametrize("bench",
                         [b for b in SUITE if b.hidden_dim >= 1024],
                         ids=lambda b: b.name)
def test_gpu_baseline_tracks_published(bench):
    pub = published_row(bench)
    res = gpu_rnn_result(bench)
    assert res.latency_ms == pytest.approx(pub.gpu_latency_ms, rel=0.35)


def test_headline_35_9_tflops():
    """'Reaching up to 35.9 effective TFLOPS for a large GRU.'"""
    big = next(b for b in SUITE if b.hidden_dim == 2816)
    report = bw_rnn_report(big)
    assert report.effective_tflops == pytest.approx(35.9, rel=0.06)
