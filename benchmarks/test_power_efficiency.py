"""Section VII-B4: power efficiency (287 GFLOPS/W on large models)."""

import pytest

from repro.harness import power_efficiency


def test_power_efficiency(benchmark, emit):
    table = benchmark(power_efficiency)
    emit(table, "power_efficiency")

    bw_row = table.rows[0]
    assert float(bw_row[3]) == pytest.approx(287, rel=0.1)
    gpu_row = table.rows[1]
    # Watt-for-watt advantage of two orders of magnitude on RNNs.
    assert float(bw_row[3]) > 50 * float(gpu_row[3])
