"""Section VII-B2: latency gap between BW_S10 and the idealized SDM."""

from repro.baselines.deepbench import SUITE
from repro.harness import bw_rnn_report, sdm_gap, sdm_latency_ms


def test_sdm_gap(benchmark, emit):
    table = benchmark(sdm_gap)
    emit(table, "sdm_gap")


def test_gap_within_2_2x_above_2000_dims():
    """'The BW_S10 is within a factor of 2.17X [of the SDM] for the
    large GRUs and LSTMs (dimension > 2000).'"""
    for bench in SUITE:
        if bench.hidden_dim <= 2000 or bench.time_steps < 2:
            continue
        gap = bw_rnn_report(bench).latency_ms / sdm_latency_ms(bench)
        assert gap <= 2.4, bench.name


def test_gap_falls_off_for_small_models():
    """'This factor falls off for the remaining models' — small layers
    sit far from the SDM because per-step latency is flat."""
    gaps = {}
    for bench in SUITE:
        if bench.time_steps < 2:
            continue
        gaps[bench.hidden_dim] = (bw_rnn_report(bench).latency_ms
                                  / sdm_latency_ms(bench))
    assert gaps[256] > 5 * gaps[2816]


def test_per_step_latency_flat_band():
    """Steady-state per-step latency in a narrow band regardless of
    model size (Section VII-B2)."""
    per_step = [bw_rnn_report(b).latency_ms * 1e3 / b.time_steps
                for b in SUITE if b.time_steps > 10]
    assert max(per_step) / min(per_step) < 1.45
