"""Fig. 7: hardware utilization across DeepBench RNN experiments."""

from repro.baselines.deepbench import SUITE, published_row
from repro.harness import bw_rnn_report, fig7
from repro.harness.experiments import gpu_rnn_result


def test_fig7(benchmark, emit):
    table = benchmark(fig7)
    emit(table, "fig7_utilization")


def test_utilization_trend_matches_paper():
    """Utilization rises with hidden dimension for BW and stays in the
    published band for every benchmark (within 5.5 points)."""
    for bench in SUITE:
        pub = published_row(bench)
        got = 100 * bw_rnn_report(bench).utilization
        assert abs(got - pub.bw_utilization_pct) < 5.5, bench.name


def test_bw_utilization_monotone_in_dimension():
    grus = sorted((b for b in SUITE
                   if b.kind == "gru" and b.time_steps > 1),
                  key=lambda b: b.hidden_dim)
    utils = [bw_rnn_report(b).utilization for b in grus]
    assert utils == sorted(utils)


def test_gpu_stuck_below_4pct():
    for bench in SUITE:
        assert gpu_rnn_result(bench).utilization < 0.04, bench.name
