"""Monitoring must be free: bit-identical outcomes, bounded overhead.

Runs the rack-loss chaos scenario over one million simulated requests
twice — bare, and with the :class:`~repro.system.monitor.FleetMonitor`
telemetry plane attached — and asserts the two acceptance properties
of an observer: every per-request outcome (status, latency, event log,
detector transitions) is bit-identical, and the monitored run costs
less than 10% extra wall time (best-of-N, interleaved, to ride out
scheduler noise).
"""

import time

import numpy as np

from repro.harness.tables import ExperimentTable
from repro.system.chaos import SCENARIOS, _simulator
from repro.system.cluster import ClusterSpec
from repro.system.monitor import FleetMonitor

REQUESTS = 1_000_000
MIN_TRIALS = 5
MAX_TRIALS = 15


def _run(spec, scenario, monitored):
    sim = _simulator(spec, True, 1, None, None)
    if monitored:
        sim.monitor = FleetMonitor(windows=256)
    t0 = time.perf_counter()
    result = sim.run(scenario.arrivals, scenario.events)
    return result, time.perf_counter() - t0


def test_monitor_overhead(emit):
    spec = ClusterSpec()
    scenario = SCENARIOS["rack_loss"](spec, 0, REQUESTS)

    # Warm both paths once (first-touch allocations, bincount grids)
    # before timing anything.
    _run(spec, scenario, False)
    _run(spec, scenario, True)

    # Interleaved sampling.  Shared CI boxes throttle in multi-second
    # bursts, so a single estimator is unreliable: best-of needs both
    # stacks to land a quiet window, the median rides the bursts but
    # needs them spread evenly across both streams.  Either converging
    # below the gate is evidence the true overhead is under it; keep
    # sampling until one does or the trial budget runs out.
    plains, mons = [], []
    while len(plains) < MAX_TRIALS:
        plain, dt = _run(spec, scenario, False)
        plains.append(dt)
        monitored, dt = _run(spec, scenario, True)
        mons.append(dt)
        if len(plains) < MIN_TRIALS:
            continue
        best_ratio = min(mons) / min(plains)
        median_ratio = float(np.median(mons) / np.median(plains))
        overhead = min(best_ratio, median_ratio) - 1.0
        if overhead < 0.08:
            break
    trials = len(plains)
    best_plain, best_mon = min(plains), min(mons)

    # Property 1: the monitor observed, it did not participate.
    assert np.array_equal(plain.status, monitored.status)
    assert np.array_equal(plain.latency_s, monitored.latency_s,
                          equal_nan=True)
    assert plain.event_log == monitored.event_log
    assert plain.detector_transitions == monitored.detector_transitions

    # Property 2: the telemetry plane stays under 10% wall overhead.
    assert overhead < 0.10, (
        f"monitored best {best_mon:.3f}s / median "
        f"{np.median(mons):.3f}s vs bare best {best_plain:.3f}s / "
        f"median {np.median(plains):.3f}s "
        f"({100 * overhead:.1f}% overhead)")

    table = ExperimentTable(
        title=f"Monitoring overhead: rack_loss, {REQUESTS:,} "
              f"requests, best of {trials}",
        headers=["stack", "wall_s", "req/s", "outcomes"],
        rows=[
            ["bare", f"{best_plain:.3f}",
             f"{REQUESTS / best_plain:,.0f}", "reference"],
            ["monitored", f"{best_mon:.3f}",
             f"{REQUESTS / best_mon:,.0f}", "bit-identical"],
        ],
        notes=[f"overhead {100 * overhead:.1f}% (< 10% required; "
               f"min of best-of-{trials} and median estimators); "
               f"status, latency, event log, and detector transitions "
               f"are bit-identical with the monitor attached"])
    emit(table, "monitor_overhead")
