"""Ablation: model pinning vs DRAM weight streaming.

Quantifies the paper's central memory-system decision (Section I: pin
DNN model weights in distributed on-chip SRAM) by lowering the same
LSTMs twice — weights pinned in the MRF vs streamed from DRAM every
timestep — and timing both on BW_S10.
"""

from repro.compiler import compile_lstm_streamed_shape, compile_rnn_shape
from repro.config import BW_S10
from repro.harness.tables import ExperimentTable
from repro.timing import TimingSimulator


def _per_step(compiled):
    a = TimingSimulator(BW_S10).run(
        compiled.program, bindings={"steps": 4},
        include_invocation_overhead=False).total_cycles
    b = TimingSimulator(BW_S10).run(
        compiled.program, bindings={"steps": 10},
        include_invocation_overhead=False).total_cycles
    return (b - a) / 6


def test_pinning_ablation(benchmark, emit):
    def sweep():
        rows = []
        for hidden in (512, 1024, 2048):
            pinned = _per_step(compile_rnn_shape("lstm", hidden, BW_S10))
            streamed = _per_step(compile_lstm_streamed_shape(hidden,
                                                             BW_S10))
            weights_mb = (8 * hidden * hidden
                          * BW_S10.weight_bits_per_element / 8 / 1e6)
            rows.append([f"LSTM {hidden}", f"{weights_mb:.1f}",
                         f"{pinned:.0f}", f"{streamed:.0f}",
                         f"{streamed / pinned:.0f}x"])
        return ExperimentTable(
            "Ablation: on-chip weight pinning vs DRAM streaming "
            "(cycles/step on BW_S10)",
            ["Model", "Weights MB", "pinned", "streamed", "slowdown"],
            rows,
            notes=["Streaming reloads every gate matrix per timestep "
                   "through the DRAM port (transfers overlap compute at "
                   "gate granularity); pinning is what makes batch-1 "
                   "RNN serving viable."])

    table = benchmark(sweep)
    emit(table, "ablation_pinning")

    slowdowns = [float(r[4].rstrip("x")) for r in table.rows]
    assert slowdowns[0] > 10          # even small models suffer badly
    assert slowdowns == sorted(slowdowns)  # worse as weights grow


def test_streamed_latency_is_bandwidth_bound():
    """Streamed per-step time approximates padded weight bytes over the
    64 B/cycle DRAM port, independent of MVM width."""
    streamed = compile_lstm_streamed_shape(2048, BW_S10)
    per = _per_step(streamed)
    tiles = 8 * BW_S10.native_tiles_for(2048, 2048)
    tile_bytes = (BW_S10.native_dim ** 2
                  * BW_S10.weight_bits_per_element / 8)
    expected = tiles * tile_bytes / 64
    assert abs(per - expected) / expected < 0.05
