"""Smoke test for the perf harness (the CI perf gate).

Runs the quick suite end to end through ``scripts/bench.py``, checks the
``BENCH_perf.json`` payload shape, and asserts the vectorized path beats
the naive reference on the headline LSTM workload — the same gate CI
applies. Full-suite numbers live in the committed BENCH_perf.json.
"""

import json
import pathlib
import sys

import pytest

from repro.harness.perf import (
    BATCH16_GATE_QUICK,
    BATCHING_GATE,
    BATCHING_GATE_QUICK,
    COMPILED_GATE_QUICK,
    HEADLINE,
    batch16_headline_speedup,
    batching_goodput_ratio,
    bench_batch_sweep,
    bench_compiled_rnn,
    bench_functional_rnn,
    compiled_headline_speedup,
    headline_speedup,
    render_table,
    results_from_json,
    run_suite,
)
from repro.config import BW_S5

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def quick_payload():
    return run_suite(quick=True)


def test_quick_suite_payload_shape(quick_payload):
    assert quick_payload["benchmark"] == "perf"
    assert quick_payload["quick"] is True
    head = quick_payload["headline"]
    assert (head["kind"], head["hidden"], head["config"]) == HEADLINE
    names = {(r["name"], r["config"]) for r in quick_payload["results"]}
    kind, hidden, cfg = HEADLINE
    assert (f"functional_{kind}_h{hidden}", cfg) in names
    assert (f"compiled_{kind}_h{hidden}", cfg) in names
    assert (f"batched_{kind}_h{hidden}_b16", cfg) in names
    for row in quick_payload["results"]:
        assert row["unit_ms"] > 0
        assert row["repeats"] >= 1


def test_headline_vectorized_beats_naive(quick_payload):
    speedup = headline_speedup(results_from_json(quick_payload))
    assert speedup is not None
    assert speedup > 1.0, (
        f"vectorized path is {speedup:.2f}x the naive reference on the "
        f"headline LSTM — the perf layer regressed")


def test_headline_compiled_beats_vectorized(quick_payload):
    results = results_from_json(quick_payload)
    speedup = compiled_headline_speedup(results)
    assert speedup is not None
    assert speedup >= COMPILED_GATE_QUICK, (
        f"compiled replay is {speedup:.2f}x the vectorized interpreter "
        f"on the headline LSTM — the replay layer regressed")
    agg = batch16_headline_speedup(results)
    assert agg is not None
    assert agg >= BATCH16_GATE_QUICK, (
        f"batch=16 replay aggregate throughput is only {agg:.2f}x the "
        f"vectorized interpreter — the batched layer regressed")


def test_headline_dynamic_batching_goodput(quick_payload):
    """The serving-layer gate: dynamic batching must beat the batch-1
    server on goodput at the same p99 SLO."""
    kind, hidden, cfg = HEADLINE
    names = {(r["name"], r["config"])
             for r in quick_payload["results"]}
    assert (f"batching_goodput_{kind}_h{hidden}", cfg) in names
    ratio = batching_goodput_ratio(results_from_json(quick_payload))
    assert ratio is not None
    assert ratio >= BATCHING_GATE_QUICK, (
        f"dynamic batching sustains only {ratio:.2f}x the batch-1 "
        f"goodput at equal SLO — the serving layer regressed")
    assert quick_payload["headline"]["batching_goodput_ratio"] == ratio


def test_committed_bench_meets_full_batching_gate():
    """The committed full-suite numbers must clear the full (2x)
    goodput floor — regenerate BENCH_perf.json if this trips."""
    payload = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    ratio = payload["headline"]["batching_goodput_ratio"]
    assert ratio >= BATCHING_GATE, (
        f"committed BENCH_perf.json goodput ratio {ratio:.2f}x is "
        f"below the {BATCHING_GATE}x floor")


def test_render_and_roundtrip(quick_payload):
    results = results_from_json(quick_payload)
    table = render_table(results)
    assert "speedup" in table
    for r in results:
        assert r.name in table


def test_bench_result_guards_divergence():
    """The harness itself must reject a divergent fast path — spot-check
    the equivalence assertions run (they raise, not warn, on mismatch)."""
    res = bench_functional_rnn("lstm", 128, BW_S5, steps=2, repeats=1)
    assert res.speedup is not None  # warm-up equivalence check passed
    res = bench_compiled_rnn("lstm", 128, BW_S5, steps=2, repeats=1)
    assert res.speedup is not None
    rows = bench_batch_sweep("lstm", 128, BW_S5, batches=(2,), steps=2,
                             repeats=1)
    assert rows[0].speedup is not None


def test_cli_driver_writes_json(tmp_path, capsys):
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        import bench
    finally:
        sys.path.pop(0)
    out = tmp_path / "BENCH_perf.json"
    rc = bench.main(["--quick", "--output", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["headline"]["speedup"] is not None
    assert "headline" in capsys.readouterr().out
