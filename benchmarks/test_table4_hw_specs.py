"""Table IV: experiment hardware specifications (Titan Xp vs BW_S10)."""

from repro.baselines import TITAN_XP
from repro.config import BW_S10
from repro.harness import table4


def test_table4(benchmark, emit):
    table = benchmark(table4)
    emit(table, "table4_hw_specs")

    assert TITAN_XP.peak_tflops == 12.1
    assert TITAN_XP.numerical_type == "Float32"
    assert BW_S10.precision_name == "BFP (1s.5e.2m)"
    assert round(BW_S10.peak_tflops, 1) == 48.0
