"""Cluster-scale chaos suite: failure domains, graceful degradation.

Four named scenarios (rack loss mid-burst, rolling slow nodes, TOR
partition + recovery, overload beyond aggregate capacity) each run
through the mitigated serving stack — power-of-two-choices routing,
phi-accrual failure detection, token-bucket admission, deadline-aware
shedding, CPU brownout — and through a no-mitigation ablation on the
same arrival trace.  Over a million simulated requests total, in
seconds of wall time, bit-deterministic under a fixed seed.
"""

from repro.harness.experiments import chaos
from repro.system.chaos import run_chaos_scenario

# 150k requests/scenario x 4 scenarios x 2 stacks > 1e6 simulated
# requests per suite run.
REQUESTS = 150_000


def _avail(table, scenario, stack):
    for row in table.rows:
        if row[0] == scenario and row[1] == stack:
            return float(row[3])
    raise AssertionError(f"no row for {scenario}/{stack}")


def test_chaos_suite(benchmark, emit):
    table = benchmark(chaos, requests=REQUESTS)
    emit(table, "chaos_suite")

    total = sum(int(row[2]) for row in table.rows)
    assert total >= 1_000_000

    # The acceptance bar: mitigation strictly beats the ablated
    # baseline where it matters most — losing a rack mid-burst and
    # sustained overload past capacity.
    for scenario in ("rack_loss", "overload"):
        mit = _avail(table, scenario, "mitigated")
        abl = _avail(table, scenario, "ablated")
        assert mit > abl, (scenario, mit, abl)
    # And never loses on the other scenarios either.
    for scenario in ("rolling_slow", "partition"):
        assert _avail(table, scenario, "mitigated") \
            >= _avail(table, scenario, "ablated")

    # The mitigated stack holds high availability through rack loss
    # and sheds its way to a useful fraction under 1.4x overload.
    assert _avail(table, "rack_loss", "mitigated") >= 95.0
    assert _avail(table, "overload", "mitigated") >= 70.0
    # The ablated overload run collapses: unbounded queues turn almost
    # every request into a client timeout.
    assert _avail(table, "overload", "ablated") < 20.0


def test_chaos_suite_deterministic():
    """Same seed => byte-identical table."""
    a = chaos(requests=20_000, seed=11)
    b = chaos(requests=20_000, seed=11)
    assert a.render() == b.render()


def test_chaos_scenarios_seed_sensitive():
    """Different seeds draw different arrival traces and outcomes."""
    a = run_chaos_scenario("rack_loss", requests=20_000, seed=1)
    b = run_chaos_scenario("rack_loss", requests=20_000, seed=2)
    assert len(a.status) != len(b.status) \
        or a.availability != b.availability


def test_detector_reacts_to_rack_loss():
    """The phi-accrual detector evicts and readmits the lost rack."""
    res = run_chaos_scenario("rack_loss", requests=50_000, seed=0)
    evicted = [t for t in res.detector_transitions
               if t[1] == "evict"]
    readmitted = [t for t in res.detector_transitions
                  if t[1] == "readmit"]
    assert len(evicted) == 6 and len(readmitted) == 6
    assert min(t[0] for t in readmitted) > max(t[0] for t in evicted)
