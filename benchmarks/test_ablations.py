"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper tables — these sweep the synthesis parameters (Section VI) and
the scheduler features to quantify each mechanism's contribution:

* native-dimension sweep: padding waste vs control overhead;
* tile/lane scaling: MVM-bound throughput;
* chain-replay scheduler: the Section VII-B3 batch-interleaving
  future-work estimate;
* BFP mantissa width: quantization SNR per bit.
"""

import numpy as np

from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.harness.tables import ExperimentTable
from repro.numerics import BfpFormat, quantization_stats
from repro.timing import TimingSimulator


def _per_step(config, kind="gru", hidden=1536, **sim_kwargs):
    compiled = compile_rnn_shape(kind, hidden, config)
    sim_a = TimingSimulator(config, **sim_kwargs)
    a = sim_a.run(compiled.program, bindings={"steps": 6},
                  include_invocation_overhead=False).total_cycles
    sim_b = TimingSimulator(config, **sim_kwargs)
    b = sim_b.run(compiled.program, bindings={"steps": 16},
                  include_invocation_overhead=False).total_cycles
    return (b - a) / 10


def test_native_dim_ablation(benchmark, emit):
    """Section VI: too-large native vectors waste padding; too-small
    ones raise control overhead. Sweep N for a 1536-dim GRU."""

    def sweep():
        rows = []
        for native, lanes in ((128, 16), (256, 32), (384, 32),
                              (400, 40), (512, 32)):
            tiles = max(1, 96000 // (native * lanes))
            cfg = BW_S10.replace(name=f"n{native}", native_dim=native,
                                 lanes=lanes, tile_engines=tiles,
                                 mrf_size=max(306, 48_000_000
                                              // native ** 2))
            per = _per_step(cfg)
            pad = (1536 / (np.ceil(1536 / native) * native)) ** 2
            rows.append([str(native), str(tiles), str(lanes),
                         f"{per:.0f}", f"{100 * pad:.0f}%"])
        return ExperimentTable(
            "Ablation: native dimension sweep (GRU-1536)",
            ["Native dim", "Tiles", "Lanes", "cycles/step",
             "padding eff."], rows)

    table = benchmark(sweep)
    emit(table, "ablation_native_dim")
    # N=384 divides 1536 exactly: it should be at least as good as 512.
    n384 = float(table.rows[2][3])
    n512 = float(table.rows[4][3])
    assert n384 <= n512 * 1.10


def test_replay_scheduler_ablation(benchmark, emit):
    """The configuration-caching scheduler (CNN variant) applied to
    RNNs — the paper's Section VII-B3 interleaving headroom."""

    def sweep():
        rows = []
        for hidden in (512, 1024, 1536, 2816):
            plain = _per_step(BW_S10, hidden=hidden)
            replay = _per_step(BW_S10, hidden=hidden, replay_loops=True)
            rows.append([f"GRU {hidden}", f"{plain:.0f}",
                         f"{replay:.0f}", f"{plain / replay:.2f}x"])
        return ExperimentTable(
            "Ablation: chain-replay scheduler on RNN steps",
            ["Model", "cycles/step", "with replay", "speedup"], rows)

    table = benchmark(sweep)
    emit(table, "ablation_replay")
    # Small models (setup-bound) gain the most; large (MVM-bound) gain
    # the least.
    speedups = [float(r[3].rstrip("x")) for r in table.rows]
    assert speedups[0] > speedups[-1]
    assert speedups[0] > 2.0


def test_mvm_scaling_ablation(benchmark, emit):
    """Tile-engine scaling: large-model throughput is MVM-bound, so
    doubling engines nearly halves steady-state cycles until the
    setup floor takes over."""

    def sweep():
        rows = []
        for tiles in (3, 6, 12, 24):
            cfg = BW_S10.replace(name=f"t{tiles}", tile_engines=tiles)
            per = _per_step(cfg, hidden=2816)
            rows.append([str(tiles), f"{2 * cfg.total_macs * 250e6 / 1e12:.0f}",
                         f"{per:.0f}"])
        return ExperimentTable(
            "Ablation: tile-engine scaling (GRU-2816)",
            ["Tile engines", "Peak TFLOPS", "cycles/step"], rows)

    table = benchmark(sweep)
    emit(table, "ablation_mvm_scaling")
    cycles = [float(r[2]) for r in table.rows]
    assert cycles[0] > cycles[1] > cycles[2]
    # Diminishing returns at the setup floor.
    assert cycles[2] / cycles[3] < cycles[0] / cycles[1]


def test_mantissa_snr_ablation(benchmark, emit):
    """BFP quantization SNR per mantissa bit (Section VI: 2-5 bits)."""

    def sweep():
        rng = np.random.default_rng(7)
        weights = rng.normal(0, 0.5, 1 << 16)
        rows = []
        for m in (2, 3, 4, 5, 6):
            fmt = BfpFormat(mantissa_bits=m, block_size=128)
            stats = quantization_stats(weights, fmt)
            rows.append([fmt.name, f"{stats.snr_db:.1f}",
                         f"{stats.rel_rms_error:.4f}",
                         f"{fmt.bits_per_element:.2f}"])
        return ExperimentTable(
            "Ablation: BFP mantissa width vs quantization SNR",
            ["Format", "SNR dB", "rel RMS err", "bits/element"], rows)

    table = benchmark(sweep)
    emit(table, "ablation_mantissa")
    snrs = [float(r[1]) for r in table.rows]
    assert snrs == sorted(snrs)
    # ~6 dB per extra bit.
    steps = [b - a for a, b in zip(snrs, snrs[1:])]
    assert all(4.0 < s < 8.0 for s in steps)
