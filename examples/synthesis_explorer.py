"""Synthesis specialization explorer (Section VI).

For a set of target models and FPGA devices, search the
(native dimension, lanes, tile engines) space under the calibrated
resource model and report the best instance per model — showing how
"synthesis specializing" the soft NPU to a model class recovers
efficiency a hardened design would lose.

Run:  python examples/synthesis_explorer.py
"""

from repro.errors import SynthesisError
from repro.synthesis import (
    ARRIA_10_1150,
    STRATIX_10_280,
    STRATIX_V_D5,
    best_config,
    rnn_requirements,
    specialize,
)


def main():
    models = [("gru", 512), ("lstm", 1024), ("gru", 1536),
              ("lstm", 2048), ("gru", 2816)]
    devices = [STRATIX_V_D5, ARRIA_10_1150, STRATIX_10_280]

    header = (f"{'model':<12}" + "".join(f"{d.name:>22}"
                                         for d in devices))
    print("best synthesis-specialized instance "
          "(effective TFLOPS after padding):\n")
    print(header)
    print("-" * len(header))
    for kind, dim in models:
        req = rnn_requirements(kind, dim)
        cells = [f"{kind.upper()}-{dim:<7}"]
        for device in devices:
            try:
                cand = best_config(req, device)
                cells.append(
                    f"{cand.effective_tflops:>10.1f} TF "
                    f"(N={cand.config.native_dim})")
            except SynthesisError:
                cells.append(f"{'does not fit':>21}")
        print(" ".join(cells))

    print("\ndetail: GRU-2816 on Stratix 10 280, top five candidates")
    req = rnn_requirements("gru", 2816)
    for cand in specialize(req, STRATIX_10_280)[:5]:
        cfg = cand.config
        res = cand.resources
        print(f"  N={cfg.native_dim:>3} lanes={cfg.lanes:>2} "
              f"tiles={cfg.tile_engines:>2}: "
              f"{cand.effective_tflops:5.1f} eff TF "
              f"(padding eff {100 * cand.padding_efficiency:.0f}%, "
              f"limited by {res.limiting_resource})")


if __name__ == "__main__":
    main()
