"""Serving under load: why real-time AI means no batching.

Section I of the paper: a throughput-oriented accelerator must batch
requests to reach efficiency, so an interactive service pays queueing
latency; the BW NPU serves each request the moment it arrives. This
example runs a discrete-event simulation of both serving stacks for a
GRU-2048 model under Poisson request arrivals and prints the latency
percentiles each sustains.

Run:  python examples/serving_under_load.py
"""

from repro.baselines import TITAN_XP, GpuRnnModel
from repro.baselines.deepbench import RnnBenchmark
from repro.harness import bw_rnn_report
from repro.system.loadgen import (
    Batch1Server,
    BatchingServer,
    compare_under_load,
)


def main():
    bench = RnnBenchmark("gru", 2048, 375)
    bw_service = bw_rnn_report(bench).latency_s
    gpu_model = GpuRnnModel(TITAN_XP)

    def gpu_batch_time(batch):
        return gpu_model.run(
            bench.weight_bytes(TITAN_XP.bytes_per_weight),
            bench.ops_per_step, bench.time_steps,
            batch=batch).latency_s

    bw = Batch1Server(bw_service)
    gpu = BatchingServer(gpu_batch_time, max_batch=32, timeout_s=0.02)
    print(f"workload: {bench.name}")
    print(f"  BW service time {bw_service * 1e3:.2f} ms -> capacity "
          f"{bw.capacity_rps:.0f} req/s")
    print(f"  GPU batch-32 time {gpu_batch_time(32) * 1e3:.1f} ms -> "
          f"capacity {gpu.capacity_rps():.0f} req/s "
          f"(batching queue, 20 ms forming timeout)\n")

    header = (f"{'req/s':>6} {'BW p50':>8} {'BW p99':>8} "
              f"{'GPU p50':>9} {'GPU p99':>9}")
    print(header)
    print("-" * len(header))
    for comp in compare_under_load(bw_service, gpu_batch_time,
                                   max_batch=32, timeout_s=0.02,
                                   rates_rps=(25, 100, 250, 400),
                                   requests=1500):
        print(f"{comp.rate_rps:>6.0f} {comp.bw.p50_ms:>7.2f}  "
              f"{comp.bw.p99_ms:>7.2f}  {comp.gpu.p50_ms:>8.1f} "
              f"{comp.gpu.p99_ms:>9.1f}")
    print("\nat 400 req/s the GPU stack is past its batching capacity "
          "and its queue diverges;")
    print("the BW NPU still serves every request within a few "
          "milliseconds.")


if __name__ == "__main__":
    main()
