"""Text classification on the NPU: 1-D CNN with on-chip max pooling.

The paper's ISA targets "1D (text) CNNs [and] word/character embeddings"
alongside RNNs (Section IV-C). This example builds the classic text CNN
(embedding -> width-3 convolution over time -> ReLU -> global max pool
-> dense classifier), lowers everything except the embedding gather onto
the NPU, and verifies predictions against the numpy reference.

The global max pool runs *on the NPU* via ``vv_max`` against a
running-maximum register folded into each convolution chain — a nice
demonstration of the crossbar-connected MFUs executing add, activation,
and max units in one pass.

Run:  python examples/text_classification.py
"""

import numpy as np

from repro.compiler import compile_text_cnn
from repro.config import NpuConfig
from repro.isa import format_program
from repro.models.textcnn import TextCnnReference


def main():
    model = TextCnnReference(vocab_size=200, embed_dim=16,
                             filter_width=3, num_filters=48,
                             num_classes=4, seed=8)
    cfg = NpuConfig(name="text", tile_engines=2, lanes=8, native_dim=32,
                    mrf_size=128, mantissa_bits=0)
    compiled = compile_text_cnn(model, cfg)
    shape = model.shape(sequence_length=20)
    print(f"text CNN: {model.num_filters} filters x width "
          f"{model.filter_width} over {model.embed_dim}-dim embeddings, "
          f"{model.num_classes} classes")
    print(f"per 20-token sequence: {shape.conv_positions} conv "
          f"positions, {shape.total_ops / 1e3:.0f}K ops\n")

    rng = np.random.default_rng(3)
    agreement = 0
    trials = 8
    for i in range(trials):
        tokens = rng.integers(0, 200, rng.integers(6, 24))
        npu = compiled.predict(tokens, exact=True)
        ref = model.predict(tokens)
        agreement += npu == ref
        if i < 4:
            logits = compiled.classify(tokens, exact=True)
            print(f"  seq len {len(tokens):>2}: NPU class {npu} "
                  f"(ref {ref}), logits "
                  f"{np.round(logits, 3)}")
    print(f"\nprediction agreement with reference: "
          f"{agreement}/{trials}")

    text = format_program(compiled.program).splitlines()
    print("\nconvolution + fused max-pool chain:")
    for line in text[2:10]:
        print("   ", line)


if __name__ == "__main__":
    main()
