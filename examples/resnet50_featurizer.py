"""CNN serving: the ResNet-50-based featurizer of Table VI.

Two parts:

1. **Functional**: a small convolution layer is linearized onto
   matrix-vector products (im2col, Section IV-B), executed on the NPU
   simulator, and checked against the exact reference.
2. **Performance**: the full 53-layer ResNet-50 featurizer is timed on
   the CNN-specialized Arria 10 instance (DRAM weight streaming
   overlapped with compute) and compared with the P40 baseline at
   batch 1 and batch 16.

Run:  python examples/resnet50_featurizer.py
"""

import numpy as np

from repro import BW_CNN_A10, ConvSpec, compile_conv
from repro.baselines import P40, GpuCnnModel
from repro.config import NpuConfig
from repro.models import conv2d_reference, random_conv_weights
from repro.models.resnet import resnet50_featurizer, total_ops
from repro.timing.cnn import network_timing


def functional_demo():
    print("1) functional: conv layer as matrix-vector products")
    spec = ConvSpec(in_height=8, in_width=8, in_channels=4, kernels=8,
                    kernel_h=3, kernel_w=3)
    cfg = NpuConfig(name="demo", tile_engines=2, lanes=4, native_dim=16,
                    mrf_size=64, mantissa_bits=0)
    weights = random_conv_weights(spec, seed=3)
    compiled = compile_conv(spec, weights, cfg, relu=True)
    rng = np.random.default_rng(4)
    image = rng.uniform(-1, 1, (8, 8, 4)).astype(np.float32)
    got = compiled.run_image(image, exact=True)
    want = np.maximum(conv2d_reference(image, weights, spec), 0)
    print(f"   {spec.describe()} -> GEMV per pixel "
          f"({spec.output_pixels} pixels x K{spec.as_matrix_shape()})")
    print(f"   max |error| vs reference: {np.abs(got - want).max():.2e}")


def performance_demo():
    print("\n2) performance: ResNet-50 featurizer at batch 1 (Table VI)")
    layers = resnet50_featurizer()
    ops = total_ops(layers)
    bw = network_timing(BW_CNN_A10)
    print(f"   network: {len(layers)} conv layers, {ops / 1e9:.1f} GOPs")
    print(f"   {BW_CNN_A10.name}: {bw.latency_ms:.2f} ms, "
          f"{bw.ips:.0f} IPS "
          f"({bw.stream_bound_layers} layers DRAM-streaming-bound)")
    p40 = GpuCnnModel(P40)
    for batch in (1, 16):
        gpu = p40.run(ops, batch=batch)
        print(f"   P40 batch {batch:>2}: {gpu.latency_ms:.2f} ms/batch, "
              f"{gpu.ips:.0f} IPS")
    print("   -> BW wins the latency-critical batch-1 case; the GPU "
          "needs batch 16 to win throughput.")

    slowest = sorted(bw.layers, key=lambda l: l.cycles, reverse=True)[:3]
    print("   three most expensive layers:")
    for layer in slowest:
        bound = "stream" if layer.stream_bound else "compute"
        print(f"     {layer.name:<22} {layer.cycles:>9.0f} cycles "
              f"({bound}-bound)")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
