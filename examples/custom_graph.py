"""Compiling a custom operator graph with the generic toolflow.

The hand-tuned lowerings cover the standard model classes; arbitrary
graphs go through the GIR compiler (`repro.compiler.girlower.lower_gir`):
build a graph, attach constant values, compile, run. This example builds
a small two-tower ranking scorer — two feature vectors pass through
separate dense towers, interact via a Hadamard product, and a classifier
head produces a relevance score — the kind of ad/search sub-graph the
paper's production pipelines accelerate.

Run:  python examples/custom_graph.py
"""

import numpy as np

from repro.compiler.gir import GirGraph
from repro.compiler.girlower import lower_gir
from repro.config import NpuConfig


def build_graph(rng):
    dim, hidden = 24, 32
    g = GirGraph("two_tower")
    g.add("query", "input", shape=(dim,))
    g.add("doc", "input", shape=(dim,))
    weights = {}
    for tower in ("q", "d"):
        weights[f"W_{tower}"] = rng.uniform(
            -0.3, 0.3, (hidden, dim)).astype(np.float32)
        weights[f"b_{tower}"] = rng.uniform(
            -0.3, 0.3, hidden).astype(np.float32)
        g.add(f"W_{tower}", "constant", shape=(hidden, dim),
              value=weights[f"W_{tower}"])
        g.add(f"b_{tower}", "constant", shape=(hidden,),
              value=weights[f"b_{tower}"])
    g.add("q_mm", "matmul", ["W_q", "query"], shape=(hidden,))
    g.add("q_pre", "add", ["q_mm", "b_q"], shape=(hidden,))
    g.add("q_act", "tanh", ["q_pre"], shape=(hidden,))
    g.add("d_mm", "matmul", ["W_d", "doc"], shape=(hidden,))
    g.add("d_pre", "add", ["d_mm", "b_d"], shape=(hidden,))
    g.add("d_act", "tanh", ["d_pre"], shape=(hidden,))
    g.add("interact", "mul", ["q_act", "d_act"], shape=(hidden,))
    weights["W_out"] = rng.uniform(
        -0.3, 0.3, (1, hidden)).astype(np.float32)
    g.add("W_out", "constant", shape=(1, hidden), value=weights["W_out"])
    g.add("score_mm", "matmul", ["W_out", "interact"], shape=(1,))
    g.add("score", "sigmoid", ["score_mm"], shape=(1,))
    g.add("y", "output", ["score"], shape=(1,))
    g.validate()
    return g, weights


def reference(weights, query, doc):
    q = np.tanh(weights["W_q"] @ query + weights["b_q"])
    d = np.tanh(weights["W_d"] @ doc + weights["b_d"])
    z = weights["W_out"] @ (q * d)
    return 1.0 / (1.0 + np.exp(-z))


def main():
    rng = np.random.default_rng(5)
    graph, weights = build_graph(rng)
    cfg = NpuConfig(name="rank", tile_engines=2, lanes=8, native_dim=32,
                    mrf_size=64, mantissa_bits=0)
    compiled = lower_gir(graph, cfg)
    print(f"graph: {len(graph)} GIR nodes -> "
          f"{compiled.program.static_chain_count()} NPU chains, "
          f"{compiled.allocator.mrf_elements_used} weights pinned\n")

    for i in range(4):
        query = rng.uniform(-1, 1, 24).astype(np.float32)
        doc = rng.uniform(-1, 1, 24).astype(np.float32)
        score = compiled.run_graph([query, doc], exact=True)[0][0]
        want = float(reference(weights, query, doc)[0])
        print(f"  pair {i}: NPU score {score:.5f}, reference "
              f"{want:.5f}, |err| {abs(score - want):.2e}")


if __name__ == "__main__":
    main()
