"""Real-time RNN serving: the paper's headline experiment (Table V).

Times the DeepBench GRU/LSTM inference suite at batch 1 on BW_S10 with
the calibrated cycle-level simulator, compares against the Titan Xp
roofline baseline and the idealized SDM, and reports the effective
TFLOPS / utilization that make "real-time AI" possible without batching.

Run:  python examples/deepbench_rnn_serving.py
"""

from repro.baselines.deepbench import SUITE, published_row
from repro.config import BW_S10
from repro.harness import bw_rnn_report, sdm_latency_ms
from repro.harness.experiments import gpu_rnn_result


def main():
    print(f"DeepBench RNN inference, batch 1, on {BW_S10.name} "
          f"({BW_S10.peak_tflops:.0f} peak TFLOPS)\n")
    header = (f"{'benchmark':<20} {'BW ms':>8} {'TFLOPS':>7} "
              f"{'%util':>6} {'GPU ms':>9} {'speedup':>8} "
              f"{'SDM gap':>8} {'paper ms':>9}")
    print(header)
    print("-" * len(header))
    for bench in SUITE:
        bw = bw_rnn_report(bench)
        gpu = gpu_rnn_result(bench)
        sdm = sdm_latency_ms(bench)
        pub = published_row(bench)
        print(f"{bench.name:<20} {bw.latency_ms:>8.3f} "
              f"{bw.effective_tflops:>7.2f} "
              f"{100 * bw.utilization:>6.1f} "
              f"{gpu.latency_ms:>9.2f} "
              f"{gpu.latency_ms / bw.latency_ms:>7.1f}x "
              f"{bw.latency_ms / sdm:>7.2f}x "
              f"{pub.bw_latency_ms:>9.3f}")

    best = max((bw_rnn_report(b) for b in SUITE),
               key=lambda r: r.effective_tflops)
    print(f"\npeak effective throughput: {best.effective_tflops:.1f} "
          f"TFLOPS with no batching")
    print("all layers served in under 4 ms — the paper's real-time "
          "criterion")


if __name__ == "__main__":
    main()
