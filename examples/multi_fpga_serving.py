"""Cloud-scale serving: hardware microservices and multi-FPGA models.

Reproduces the system-level patterns of Sections II-A/II-B:

1. publish compiled models as hardware microservices on the datacenter
   network and serve requests with a full latency breakdown;
2. run a federated CPU+FPGA plan (CPU featurization, FPGA RNN);
3. split a bidirectional LSTM across two FPGAs invoked concurrently
   (the paper's production example), verifying the concatenated output
   functionally;
4. partition a stacked RNN that exceeds one accelerator's on-chip
   memory.

Run:  python examples/multi_fpga_serving.py
"""

import numpy as np

from repro import LstmReference, NpuConfig, compile_lstm
from repro.compiler.partition import (
    accelerators_needed,
    rnn_weight_blocks,
)
from repro.config import BW_S10
from repro.system import (
    BidirectionalRnnService,
    CpuStage,
    FederatedRuntime,
    FpgaNode,
    FpgaStage,
    HardwareMicroservice,
    MicroserviceRegistry,
)

CFG = NpuConfig(name="node", tile_engines=2, lanes=4, native_dim=16,
                mrf_size=256, initial_vrf_depth=128,
                addsub_vrf_depth=128, multiply_vrf_depth=128,
                mantissa_bits=0)


def main():
    rng = np.random.default_rng(11)
    registry = MicroserviceRegistry()

    # 1. Publish a microservice.
    model = LstmReference(24, 24, seed=5)
    svc = HardwareMicroservice(
        "speech-lstm", FpgaNode("fpga-0", compile_lstm(model, CFG)))
    address = registry.publish(svc)
    result = svc.invoke(steps=25)
    print(f"1) microservice 'speech-lstm' published at {address}")
    print(f"   25-step request: {result.total_ms:.3f} ms total "
          f"(net-in {result.network_in_s * 1e6:.1f} us, compute "
          f"{result.compute_s * 1e6:.1f} us, net-out "
          f"{result.network_out_s * 1e6:.1f} us)")

    # 2. Federated CPU+FPGA plan.
    xs = [rng.uniform(-1, 1, 24).astype(np.float32) for _ in range(6)]
    runtime = FederatedRuntime(registry)
    plan = [CpuStage("normalize",
                     lambda seq: [x / (np.abs(x).max() + 1e-6)
                                  for x in seq]),
            FpgaStage("rnn", "speech-lstm")]
    outcome = runtime.execute(plan, xs, functional=True)
    print(f"\n2) federated plan (CPU normalize -> FPGA LSTM): "
          f"{outcome.total_latency_ms:.3f} ms, "
          f"{len(outcome.value)} output vectors")

    # 3. Bidirectional LSTM on two FPGAs.
    fwd = LstmReference(24, 24, seed=6)
    bwd = LstmReference(24, 24, seed=7)
    registry.publish(HardwareMicroservice(
        "bi-fwd", FpgaNode("fpga-1", compile_lstm(fwd, CFG))))
    registry.publish(HardwareMicroservice(
        "bi-bwd", FpgaNode("fpga-2", compile_lstm(bwd, CFG))))
    bidi = BidirectionalRnnService(registry, "bi-fwd", "bi-bwd")
    bi_result = bidi.invoke(xs, functional=True)
    want_t0 = np.concatenate([fwd.run(xs)[0],
                              bwd.run(list(reversed(xs)))[-1]])
    err = np.abs(bi_result.value[0] - want_t0).max()
    print(f"\n3) bidirectional LSTM across two FPGAs: "
          f"{bi_result.total_latency_ms:.3f} ms "
          f"(halves run concurrently); functional check err={err:.1e}")

    # 4. Partitioning a model that exceeds one FPGA.
    blocks = rnn_weight_blocks("lstm", 2048, layers=4)
    needed = accelerators_needed(blocks, BW_S10)
    weights_mb = sum(b.elements for b in blocks) * 4 / 1e6
    print(f"\n4) a 4-layer LSTM-2048 stack ({weights_mb:.0f} MB fp32 "
          f"weights) partitions onto {needed} x {BW_S10.name} "
          "accelerators, parameters pinned on chip on each")


if __name__ == "__main__":
    main()
