"""Quickstart: compile an LSTM onto a BW NPU and serve a request.

Demonstrates the core flow of the library:

1. build a reference model (weights in numpy),
2. lower it onto an NPU configuration (the toolflow of Section II-B),
3. execute it on the architecturally exact functional simulator and
   compare against the numpy reference,
4. estimate serving latency with the calibrated timing model,
5. peek at the generated NPU program (the Section IV-C listing).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BW_S10, LstmReference, TimingSimulator, compile_lstm
from repro.isa import format_program


def main():
    # 1. A 256-dim LSTM with seeded random weights.
    model = LstmReference(hidden_dim=256, seed=42)
    print(f"model: LSTM hidden={model.hidden_dim}, "
          f"{model.shape(1).parameter_count / 1e6:.2f}M parameters")

    # 2. Lower onto the Stratix 10 instance (Table III's BW_S10).
    compiled = compile_lstm(model, BW_S10)
    print(f"target: {BW_S10.name} — {BW_S10.total_macs} MACs, "
          f"{BW_S10.peak_tflops:.0f} peak TFLOPS, "
          f"{compiled.mrf_tiles_used} MRF tile slots used")

    # 3. Serve a 10-step request on the functional simulator and check
    # it against the reference. `exact=True` disables BFP quantization
    # so the comparison is bit-for-bit meaningful.
    rng = np.random.default_rng(0)
    xs = [rng.uniform(-1, 1, 256).astype(np.float32) for _ in range(10)]
    outputs = compiled.run_sequence(xs, exact=True)
    reference = model.run(xs)
    err = max(np.abs(o - r).max() for o, r in zip(outputs, reference))
    print(f"functional check: max |error| vs numpy reference = {err:.2e}")

    # ... and once more with the production BFP numerics (1s.5e.2m).
    bfp_outputs = compiled.run_sequence(xs, exact=False)
    rel = (np.linalg.norm(bfp_outputs[-1] - reference[-1])
           / np.linalg.norm(reference[-1]))
    print(f"BFP (1s.5e.2m) check: relative output error = {rel:.3f}")

    # 4. Latency estimate from the calibrated cycle-level model.
    report = TimingSimulator(BW_S10).run(
        compiled.program, bindings={"steps": 10},
        nominal_ops=10 * compiled.ops_per_step)
    print(f"timing: {report.total_cycles:.0f} cycles = "
          f"{report.latency_ms * 1e3:.1f} us for 10 timesteps "
          f"({report.effective_tflops:.2f} effective TFLOPS)")

    # 5. The generated program, in the ISA's assembly form.
    text = format_program(compiled.program)
    lines = text.splitlines()
    print(f"\ngenerated NPU program ({len(lines)} lines); first chain:")
    for line in lines[:12]:
        print("   ", line)
    print("    ...")


if __name__ == "__main__":
    main()
