"""Perf benchmark driver: time the simulator hot paths, record the
trajectory, and gate on the vectorized-vs-naive LSTM speedup.

Runs the :mod:`repro.harness.perf` suite — functional LSTM/GRU execution
(vectorized vs. ``naive=True``), timing-simulator scheduling, and BFP
quantization on the Table IV configs — prints a comparison table, and
writes ``BENCH_perf.json`` at the repository root::

    PYTHONPATH=src python scripts/bench.py            # full suite
    PYTHONPATH=src python scripts/bench.py --quick    # CI smoke subset

Exits non-zero if the vectorized path is slower than the naive reference
on the headline LSTM workload (the CI perf-smoke gate). See
docs/PERFORMANCE.md for how to read the numbers.
"""

import argparse
import json
import pathlib
import sys

from repro.harness.perf import (headline_speedup, render_table,
                                results_from_json, run_suite)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads / fewer repeats (CI smoke)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_perf.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick)
    results = results_from_json(payload)
    print(render_table(results))

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    speedup = headline_speedup(results)
    head = payload["headline"]
    if speedup is None:
        print(f"headline workload {head['kind']} h={head['hidden']} "
              f"({head['config']}) missing from results", file=sys.stderr)
        return 2
    print(f"headline {head['kind']} h={head['hidden']} on "
          f"{head['config']}: vectorized is {speedup:.2f}x naive")
    if speedup < 1.0:
        print("FAIL: vectorized path is slower than the naive reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
