"""Perf benchmark driver: time the simulator hot paths, record the
trajectory, and gate on the headline speedups.

Runs the :mod:`repro.harness.perf` suite — functional LSTM/GRU execution
(vectorized vs. ``naive=True``), compiled program replay (sequential and
batched vs. the vectorized interpreter), timing-simulator scheduling,
and BFP quantization on the Table IV configs — prints a comparison
table, and writes ``BENCH_perf.json`` at the repository root::

    PYTHONPATH=src python scripts/bench.py            # full suite
    PYTHONPATH=src python scripts/bench.py --quick    # CI smoke subset

Exits non-zero if, on the headline h=1024 LSTM (BW_S10): the vectorized
path is slower than the naive reference, compiled replay misses its
speedup floor over the vectorized interpreter, or batch=16 replay
misses its aggregate-throughput floor (relaxed floors under ``--quick``;
see the gate constants in :mod:`repro.harness.perf`). See
docs/PERFORMANCE.md for how to read the numbers. ``repro bench`` is an
equivalent entry point.
"""

import argparse
import json
import pathlib
import sys

from repro.harness.perf import (headline_gates, render_table,
                                results_from_json, run_suite)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workloads / fewer repeats (CI smoke)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_perf.json",
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    payload = run_suite(quick=args.quick)
    results = results_from_json(payload)
    print(render_table(results))

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    head = payload["headline"]
    workload = (f"headline {head['kind']} h={head['hidden']} on "
                f"{head['config']}")
    rc = 0
    for label, speedup, floor in headline_gates(results, args.quick):
        if speedup is None:
            print(f"{workload}: {label} missing from results",
                  file=sys.stderr)
            rc = max(rc, 2)
            continue
        print(f"{workload}: {label} is {speedup:.2f}x (floor {floor}x)")
        if speedup < floor:
            print(f"FAIL: {label} below the {floor}x floor",
                  file=sys.stderr)
            rc = max(rc, 1)
    return rc


if __name__ == "__main__":
    sys.exit(main())
