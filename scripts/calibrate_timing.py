"""Recalibrate the timing-model constants against Table V.

The frozen defaults in ``repro.timing.latency.LatencyConstants`` were
produced by this script: a coarse grid search over the pipeline-depth
constants, scored by relative error against the eleven measured per-step
cycle counts of the paper's Table V (BW_S10 at 250 MHz). Run it to
verify the frozen constants are still (near-)optimal after model
changes::

    python scripts/calibrate_timing.py

It prints the best grid point, the frozen defaults' score, and the
per-benchmark fit for both.
"""

import itertools
import math
from typing import Dict, Tuple

from repro.baselines.deepbench import PUBLISHED_TABLE5
from repro.compiler.lowering import compile_rnn_shape
from repro.config import BW_S10
from repro.timing import LatencyConstants, TimingSimulator

#: Per-step cycle targets derived from Table V (latency * clock / steps).
TARGETS: Dict[Tuple[str, int], float] = {
    (row.benchmark.kind, row.benchmark.hidden_dim):
        row.bw_latency_ms * 1e-3 * BW_S10.clock_mhz * 1e6
        / row.benchmark.time_steps
    for row in PUBLISHED_TABLE5 if row.benchmark.time_steps > 1
}

GRID = dict(
    arb_depth=[8, 12, 20],
    mvm_fixed=[30, 40, 60, 90],
    fu_depth=[6, 8, 12],
    mfu_transit=[8],
    wb_depth=[16, 24, 36],
    forward_delay=[20, 30, 50],
    chain_setup_cycles=[68, 70, 72, 74],
)


def measure(constants: LatencyConstants) -> Dict[Tuple[str, int], float]:
    """Steady-state cycles/step for every target benchmark."""
    out = {}
    for (kind, hidden) in TARGETS:
        compiled = compile_rnn_shape(kind, hidden, BW_S10)
        a = TimingSimulator(BW_S10, constants=constants).run(
            compiled.program, bindings={"steps": 6},
            include_invocation_overhead=False).total_cycles
        b = TimingSimulator(BW_S10, constants=constants).run(
            compiled.program, bindings={"steps": 16},
            include_invocation_overhead=False).total_cycles
        out[(kind, hidden)] = (b - a) / 10
    return out


def rms_relative_error(measured: Dict[Tuple[str, int], float]) -> float:
    total = sum(((measured[k] - TARGETS[k]) / TARGETS[k]) ** 2
                for k in TARGETS)
    return math.sqrt(total / len(TARGETS))


def main() -> None:
    frozen = LatencyConstants()
    frozen_fit = measure(frozen)
    print(f"frozen defaults: rms relative error "
          f"{rms_relative_error(frozen_fit):.4f}")

    best = None
    for values in itertools.product(*GRID.values()):
        constants = LatencyConstants(**dict(zip(GRID, values)))
        fit = measure(constants)
        err = rms_relative_error(fit)
        if best is None or err < best[0]:
            best = (err, constants, fit)
    err, constants, fit = best
    print(f"grid best:       rms relative error {err:.4f}")
    print(constants)
    print(f"\n{'benchmark':<14} {'paper':>7} {'frozen':>7} {'best':>7}")
    for key in sorted(TARGETS):
        kind, hidden = key
        print(f"{kind.upper()}-{hidden:<8} {TARGETS[key]:>7.0f} "
              f"{frozen_fit[key]:>7.0f} {fit[key]:>7.0f}")


if __name__ == "__main__":
    main()
