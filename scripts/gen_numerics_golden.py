"""Regenerate the golden-vector conformance files for the BFP family.

Writes one JSON file per :data:`repro.numerics.FORMAT_FAMILY` member to
``tests/golden/numerics/``. Each file pins the exact quantized values,
integer mantissas, and shared exponents for a fixed workload of seeded
random rows plus hand-built edge rows (E8M0 boundary exponents,
max-mantissa saturation, zero blocks, subnormal-range underflow), as
produced by :func:`repro.numerics.bfp.quantize_reference` — the scalar
oracle. ``tests/test_numerics_golden.py`` replays them against both the
oracle and the vectorized quantizer in tier-1, so any drift in either
implementation (or in the format definitions) fails loudly.

Run from the repo root after an intentional numerics change:

    PYTHONPATH=src python scripts/gen_numerics_golden.py
"""

from __future__ import annotations

import json
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.numerics.bfp import (FORMAT_FAMILY, BfpFormat, decompose,
                                quantize_reference)

OUT_DIR = (pathlib.Path(__file__).resolve().parents[1]
           / "tests" / "golden" / "numerics")

#: Rows of seeded pseudo-random data per format.
RANDOM_ROWS = 4
#: Blocks per row (the trailing axis is ``blocks * block_size`` wide).
BLOCKS_PER_ROW = 2


def edge_rows(fmt: BfpFormat) -> list:
    """Hand-built rows hitting the format's boundary behaviours."""
    width = BLOCKS_PER_ROW * fmt.block_size
    rows = []
    # Max-mantissa saturation: the block max sets the exponent, and the
    # value just below the next power of two rounds up to the clamp.
    sat = np.zeros(width)
    sat[::2] = np.ldexp(1.0, fmt.max_exponent)
    sat[1::2] = -np.ldexp(1.0, fmt.max_exponent + 1) * 0.999999
    rows.append(sat)
    # Boundary exponents: top representable, one above (clamps; for
    # E8M0 this is the NaN-code exponent the encoding cannot reach),
    # and bottom-of-range underflow.
    rows.append(np.full(width, np.ldexp(1.0, fmt.max_exponent)))
    rows.append(np.full(width, np.ldexp(1.0, fmt.max_exponent + 1)))
    rows.append(np.full(width, np.ldexp(1.0, fmt.min_exponent - 10)))
    # A zero block next to a live block (per-block independence), with
    # signed values exercising round-half-even in the live block.
    mixed = np.zeros(width)
    half = fmt.block_size
    live = np.linspace(-3.5, 3.5, half) + 0.25
    mixed[half:2 * half] = live[:half]
    rows.append(mixed)
    return rows


def build_vectors(key: str, fmt: BfpFormat) -> dict:
    rng = np.random.default_rng(20260808)
    width = BLOCKS_PER_ROW * fmt.block_size
    base = rng.standard_normal((RANDOM_ROWS, width))
    # Scatter outliers so blocks disagree about the shared exponent.
    mask = rng.random(base.shape) < 0.1
    base[mask] *= 64.0
    f32max = float(np.finfo(np.float32).max)
    x = np.clip(
        np.vstack([base] + [np.asarray(r)[np.newaxis, :]
                            for r in edge_rows(fmt)]),
        -f32max, f32max).astype(np.float32)
    values = quantize_reference(x, fmt)
    mant, exps = decompose(x, fmt)
    return {
        "format": {
            "key": key,
            "mantissa_bits": fmt.mantissa_bits,
            "exponent_bits": fmt.exponent_bits,
            "block_size": fmt.block_size,
            "scale_granularity": fmt.scale_granularity,
            "scale_encoding": fmt.scale_encoding,
            "label": fmt.name,
        },
        "input": [[float(v) for v in row] for row in x],
        "values": [[float(v) for v in row] for row in values],
        "mantissas": [[int(v) for v in row] for row in mant],
        "exponents": [[int(v) for v in row] for row in exps],
    }


def main() -> int:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    for key, fmt in FORMAT_FAMILY.items():
        payload = build_vectors(key, fmt)
        path = OUT_DIR / f"{key}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
